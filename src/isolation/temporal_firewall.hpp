// Temporal firewall (Kopetz): a unidirectional, time-aware shared variable
// between a producer and consumers with no control-flow coupling.
//
// The producer publishes state messages with an explicit validity interval;
// consumers read non-blocking and learn both the value and whether it is
// temporally accurate *right now*. This is the §4 interface discipline for
// IP cores: "the interfaces between the IP-Core and the NoC must be precisely
// specified in the temporal and logical domain".
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/time.hpp"

namespace orte::isolation {

template <typename T>
class TemporalFirewall {
 public:
  struct Entry {
    T value{};
    sim::Time observation_time = 0;  ///< When the value was sampled.
    sim::Time valid_until = 0;       ///< Temporal accuracy horizon.
  };

  /// Producer side: overwrite-in-place (never blocks, never queues).
  void publish(T value, sim::Time observation_time, sim::Time valid_until) {
    entry_ = Entry{std::move(value), observation_time, valid_until};
    ++updates_;
  }

  /// Consumer side: the current entry if it is still temporally valid at
  /// `now`, otherwise nullopt (the consumer must degrade gracefully).
  [[nodiscard]] std::optional<Entry> read(sim::Time now) const {
    ++reads_;
    if (!entry_.has_value() || now > entry_->valid_until) {
      ++stale_reads_;
      return std::nullopt;
    }
    return entry_;
  }

  /// Latest entry regardless of validity (diagnosis).
  [[nodiscard]] const std::optional<Entry>& raw() const { return entry_; }

  [[nodiscard]] std::uint64_t updates() const { return updates_; }
  [[nodiscard]] std::uint64_t stale_reads() const { return stale_reads_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }

 private:
  std::optional<Entry> entry_;
  std::uint64_t updates_ = 0;
  mutable std::uint64_t reads_ = 0;
  mutable std::uint64_t stale_reads_ = 0;
};

}  // namespace orte::isolation
