#include "isolation/fault_injection.hpp"

#include <stdexcept>

namespace orte::isolation {

std::function<sim::Duration()> overrunning_wcet(const sim::Kernel& kernel,
                                                sim::Duration base,
                                                double factor, sim::Time from,
                                                sim::Time until) {
  if (factor < 1.0) {
    throw std::invalid_argument("overrun factor must be >= 1");
  }
  return [&kernel, base, factor, from, until] {
    const sim::Time now = kernel.now();
    if (now >= from && now < until) {
      return static_cast<sim::Duration>(static_cast<double>(base) * factor);
    }
    return base;
  };
}

std::function<sim::Duration()> jittery_wcet(sim::Rng& rng, sim::Duration base,
                                            double jitter_fraction) {
  if (jitter_fraction < 0.0 || jitter_fraction > 1.0) {
    throw std::invalid_argument("jitter fraction must be in [0,1]");
  }
  return [&rng, base, jitter_fraction] {
    const double scale = 1.0 - jitter_fraction * rng.next_double();
    return static_cast<sim::Duration>(static_cast<double>(base) * scale);
  };
}

std::function<sim::Duration()> crashing_wcet(const sim::Kernel& kernel,
                                             sim::Duration base,
                                             sim::Time from) {
  return [&kernel, base, from] {
    return kernel.now() >= from ? sim::Duration{0} : base;
  };
}

}  // namespace orte::isolation
