// AUTOSAR-COM-style communication services.
//
// Applications (via the RTE) deal in *signals*; COM packs signals into
// I-PDUs, hands them to a bus controller, and unpacks + notifies on
// reception. Supported per AUTOSAR COM:
//  * bit-level signal packing (LSB-first within the PDU payload),
//  * transmission modes: periodic, direct (event-triggered on send), mixed,
//  * reception deadline monitoring (alive timeout) with a miss callback —
//    the COM-level error-handling hook §2 requires ("communication errors").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace orte::bsw {

using sim::Duration;
using sim::Time;

enum class TxMode {
  kPeriodic,  ///< Sent every period regardless of signal writes.
  kDirect,    ///< Sent immediately when a triggered signal is written.
  kMixed,     ///< Both.
};

struct IPduConfig {
  std::string name;
  std::uint32_t frame_id = 0;
  std::size_t length_bytes = 8;
  TxMode mode = TxMode::kPeriodic;
  Duration period = 0;          ///< Required for periodic/mixed.
  Time offset = 0;              ///< Phase of the periodic transmission.
  Duration rx_timeout = 0;      ///< 0 = no deadline monitoring (rx side).
};

struct SignalConfig {
  std::string name;
  std::string ipdu;          ///< Owning I-PDU.
  std::size_t bit_offset = 0;
  std::size_t bit_length = 8;  ///< 1..64.
  bool triggered = false;      ///< Writing it fires a direct transmission.
};

/// Pack `value` into `bits` [offset, offset+length) of `payload`, LSB first.
void pack_signal(std::vector<std::uint8_t>& payload, std::size_t bit_offset,
                 std::size_t bit_length, std::uint64_t value);
/// Extract the signal value; zero-extended.
std::uint64_t unpack_signal(const std::vector<std::uint8_t>& payload,
                            std::size_t bit_offset, std::size_t bit_length);

class Com {
 public:
  using SignalCallback = std::function<void(std::uint64_t)>;
  using TimeoutCallback = std::function<void(const std::string& ipdu)>;

  Com(sim::Kernel& kernel, sim::Trace& trace);

  /// Declare a transmit I-PDU bound to a bus controller.
  void add_tx_ipdu(IPduConfig cfg, net::Controller& controller);
  /// Declare a receive I-PDU; COM subscribes to the controller's RX path.
  void add_rx_ipdu(IPduConfig cfg, net::Controller& controller);
  /// Declare a signal within a previously declared I-PDU (tx or rx side).
  void add_signal(SignalConfig cfg);

  /// Arm periodic transmissions and timeout monitors. Call once.
  void start();

  /// Write a signal value (tx side). Direct/mixed triggered signals transmit
  /// the owning PDU immediately.
  void send_signal(std::string_view name, std::uint64_t value);
  /// Latest received value (rx side); nullopt before first reception.
  [[nodiscard]] std::optional<std::uint64_t> read_signal(
      std::string_view name) const;
  /// Reception instant of the PDU carrying the signal's latest value.
  [[nodiscard]] std::optional<Time> signal_age(std::string_view name) const;

  void on_signal(std::string_view name, SignalCallback cb);
  void on_rx_timeout(TimeoutCallback cb) { timeout_cb_ = std::move(cb); }

  [[nodiscard]] std::uint64_t pdus_sent() const { return pdus_sent_; }
  [[nodiscard]] std::uint64_t pdus_received() const { return pdus_received_; }
  [[nodiscard]] std::uint64_t rx_timeouts() const { return rx_timeouts_; }

 private:
  struct TxPdu {
    IPduConfig cfg;
    net::Controller* controller = nullptr;
    std::vector<std::uint8_t> payload;
    bool dirty = false;  ///< Written since last transmission.
  };
  struct RxPdu {
    IPduConfig cfg;
    std::vector<std::uint8_t> payload;
    Time last_rx = -1;
    bool timed_out = false;
  };
  struct Signal {
    SignalConfig cfg;
    std::uint64_t last_value = 0;
    bool valid = false;
    std::vector<SignalCallback> callbacks;
  };

  void transmit(TxPdu& pdu);
  void handle_rx(const net::Frame& frame);
  void check_timeouts();

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  std::map<std::string, TxPdu, std::less<>> tx_;
  std::map<std::string, RxPdu, std::less<>> rx_;
  std::map<std::uint32_t, std::string> rx_by_frame_id_;
  std::map<std::string, Signal, std::less<>> signals_;
  std::vector<net::Controller*> subscribed_;
  TimeoutCallback timeout_cb_;
  bool started_ = false;
  std::uint64_t pdus_sent_ = 0;
  std::uint64_t pdus_received_ = 0;
  std::uint64_t rx_timeouts_ = 0;
};

}  // namespace orte::bsw
