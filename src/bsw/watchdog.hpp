// Watchdog Manager: alive supervision of tasks/runnables.
//
// Each supervised entity must report between [min, max] checkpoint
// indications per supervision cycle; violations fire a callback (typically
// wired to DEM + a mode switch to a safe state). Together with execution
// budgets this closes the timing-isolation loop: budgets bound *over*-use of
// the CPU, alive supervision detects *under*-delivery (crashed or starved
// suppliers).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace orte::bsw {

struct SupervisionConfig {
  std::string entity;
  std::uint32_t min_indications = 1;
  std::uint32_t max_indications = UINT32_MAX;
  /// Consecutive failed cycles tolerated before the violation fires.
  std::uint32_t failed_cycles_tolerance = 0;
};

class WatchdogManager {
 public:
  using ViolationCallback =
      std::function<void(const std::string& entity, std::uint32_t count)>;

  WatchdogManager(sim::Kernel& kernel, sim::Trace& trace,
                  sim::Duration supervision_cycle);

  void supervise(SupervisionConfig cfg);

  /// Called by the supervised code path (task body / runnable).
  void checkpoint(std::string_view entity);

  /// Begin supervision cycles. Call once.
  void start();

  void on_violation(ViolationCallback cb) { violation_cb_ = std::move(cb); }

  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] bool is_expired(std::string_view entity) const;

 private:
  struct Entity {
    SupervisionConfig cfg;
    std::uint32_t count = 0;
    std::uint32_t failed_cycles = 0;
    bool expired = false;
  };

  void cycle();

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  sim::Duration cycle_len_;
  std::map<std::string, Entity, std::less<>> entities_;
  ViolationCallback violation_cb_;
  std::uint64_t violations_ = 0;
  bool started_ = false;
};

}  // namespace orte::bsw
