#include "bsw/com.hpp"

#include <algorithm>
#include <stdexcept>

namespace orte::bsw {

void pack_signal(std::vector<std::uint8_t>& payload, std::size_t bit_offset,
                 std::size_t bit_length, std::uint64_t value) {
  if (bit_length == 0 || bit_length > 64) {
    throw std::invalid_argument("signal bit length out of range");
  }
  if ((bit_offset + bit_length + 7) / 8 > payload.size()) {
    throw std::invalid_argument("signal does not fit the PDU payload");
  }
  for (std::size_t i = 0; i < bit_length; ++i) {
    const std::size_t bit = bit_offset + i;
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (bit % 8));
    if ((value >> i) & 1u) {
      payload[bit / 8] |= mask;
    } else {
      payload[bit / 8] &= static_cast<std::uint8_t>(~mask);
    }
  }
}

std::uint64_t unpack_signal(const std::vector<std::uint8_t>& payload,
                            std::size_t bit_offset, std::size_t bit_length) {
  if (bit_length == 0 || bit_length > 64) {
    throw std::invalid_argument("signal bit length out of range");
  }
  if ((bit_offset + bit_length + 7) / 8 > payload.size()) {
    throw std::invalid_argument("signal outside the PDU payload");
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bit_length; ++i) {
    const std::size_t bit = bit_offset + i;
    if (payload[bit / 8] & (1u << (bit % 8))) value |= (1ULL << i);
  }
  return value;
}

Com::Com(sim::Kernel& kernel, sim::Trace& trace)
    : kernel_(kernel), trace_(trace) {}

void Com::add_tx_ipdu(IPduConfig cfg, net::Controller& controller) {
  if (started_) throw std::logic_error("Com::add_tx_ipdu after start()");
  if ((cfg.mode == TxMode::kPeriodic || cfg.mode == TxMode::kMixed) &&
      cfg.period <= 0) {
    throw std::invalid_argument("periodic I-PDU needs a period: " + cfg.name);
  }
  TxPdu pdu;
  pdu.controller = &controller;
  pdu.payload.assign(cfg.length_bytes, 0);
  const std::string name = cfg.name;
  pdu.cfg = std::move(cfg);
  if (!tx_.emplace(name, std::move(pdu)).second) {
    throw std::invalid_argument("duplicate tx I-PDU: " + name);
  }
}

void Com::add_rx_ipdu(IPduConfig cfg, net::Controller& controller) {
  if (started_) throw std::logic_error("Com::add_rx_ipdu after start()");
  RxPdu pdu;
  pdu.payload.assign(cfg.length_bytes, 0);
  const std::string name = cfg.name;
  const std::uint32_t frame_id = cfg.frame_id;
  pdu.cfg = std::move(cfg);
  if (!rx_.emplace(name, std::move(pdu)).second) {
    throw std::invalid_argument("duplicate rx I-PDU: " + name);
  }
  rx_by_frame_id_[frame_id] = name;
  // Subscribe once per controller; every rx PDU shares the dispatch path.
  if (std::find(subscribed_.begin(), subscribed_.end(), &controller) ==
      subscribed_.end()) {
    subscribed_.push_back(&controller);
    controller.on_receive([this](const net::Frame& f) { handle_rx(f); });
  }
}

void Com::add_signal(SignalConfig cfg) {
  const bool tx_side = tx_.find(cfg.ipdu) != tx_.end();
  const bool rx_side = rx_.find(cfg.ipdu) != rx_.end();
  if (!tx_side && !rx_side) {
    throw std::invalid_argument("signal references unknown I-PDU: " +
                                cfg.ipdu);
  }
  const std::string name = cfg.name;
  Signal sig;
  sig.cfg = std::move(cfg);
  if (!signals_.emplace(name, std::move(sig)).second) {
    throw std::invalid_argument("duplicate signal: " + name);
  }
}

void Com::start() {
  if (started_) throw std::logic_error("Com::start called twice");
  started_ = true;
  for (auto& [name, pdu] : tx_) {
    if (pdu.cfg.mode == TxMode::kPeriodic || pdu.cfg.mode == TxMode::kMixed) {
      TxPdu* p = &pdu;
      kernel_.schedule_periodic(
          kernel_.now() + p->cfg.offset, p->cfg.period,
          [this, p] { transmit(*p); }, sim::EventOrder::kKernel);
    }
  }
  bool any_timeout = false;
  for (const auto& [name, pdu] : rx_) {
    if (pdu.cfg.rx_timeout > 0) any_timeout = true;
  }
  if (any_timeout) {
    kernel_.schedule_periodic(
        kernel_.now() + sim::milliseconds(1), sim::milliseconds(1),
        [this] { check_timeouts(); }, sim::EventOrder::kObserver);
  }
}

void Com::send_signal(std::string_view name, std::uint64_t value) {
  auto it = signals_.find(name);
  if (it == signals_.end()) {
    throw std::invalid_argument("Com::send_signal: unknown signal");
  }
  Signal& sig = it->second;
  auto pit = tx_.find(sig.cfg.ipdu);
  if (pit == tx_.end()) {
    throw std::logic_error("Com::send_signal on an rx-side signal");
  }
  TxPdu& pdu = pit->second;
  pack_signal(pdu.payload, sig.cfg.bit_offset, sig.cfg.bit_length, value);
  pdu.dirty = true;
  sig.last_value = value;
  sig.valid = true;
  if (sig.cfg.triggered && (pdu.cfg.mode == TxMode::kDirect ||
                            pdu.cfg.mode == TxMode::kMixed)) {
    transmit(pdu);
  }
}

std::optional<std::uint64_t> Com::read_signal(std::string_view name) const {
  auto it = signals_.find(name);
  if (it == signals_.end()) {
    throw std::invalid_argument("Com::read_signal: unknown signal");
  }
  if (!it->second.valid) return std::nullopt;
  return it->second.last_value;
}

std::optional<Time> Com::signal_age(std::string_view name) const {
  auto it = signals_.find(name);
  if (it == signals_.end()) {
    throw std::invalid_argument("Com::signal_age: unknown signal");
  }
  auto pit = rx_.find(it->second.cfg.ipdu);
  if (pit == rx_.end() || pit->second.last_rx < 0) return std::nullopt;
  return pit->second.last_rx;
}

void Com::on_signal(std::string_view name, SignalCallback cb) {
  auto it = signals_.find(name);
  if (it == signals_.end()) {
    throw std::invalid_argument("Com::on_signal: unknown signal");
  }
  it->second.callbacks.push_back(std::move(cb));
}

void Com::transmit(TxPdu& pdu) {
  net::Frame frame;
  frame.id = pdu.cfg.frame_id;
  frame.name = pdu.cfg.name;
  frame.payload = pdu.payload;
  frame.enqueued_at = kernel_.now();
  pdu.dirty = false;
  ++pdus_sent_;
  trace_.emit(kernel_.now(), "com.tx", pdu.cfg.name, frame.id);
  pdu.controller->send(std::move(frame));
}

void Com::handle_rx(const net::Frame& frame) {
  auto idit = rx_by_frame_id_.find(frame.id);
  if (idit == rx_by_frame_id_.end()) return;  // not for us
  RxPdu& pdu = rx_.find(idit->second)->second;
  // Stage into the PDU's own (mutable) buffer; reuses capacity, so steady
  // state does no allocation. The frame's shared payload stays untouched.
  pdu.payload.assign(frame.payload.begin(), frame.payload.end());
  pdu.payload.resize(pdu.cfg.length_bytes, 0);
  pdu.last_rx = kernel_.now();
  pdu.timed_out = false;
  ++pdus_received_;
  trace_.emit(kernel_.now(), "com.rx", pdu.cfg.name, frame.id);
  // Update and notify every signal mapped onto this PDU.
  for (auto& [name, sig] : signals_) {
    if (sig.cfg.ipdu != pdu.cfg.name) continue;
    sig.last_value =
        unpack_signal(pdu.payload, sig.cfg.bit_offset, sig.cfg.bit_length);
    sig.valid = true;
    for (const auto& cb : sig.callbacks) cb(sig.last_value);
  }
}

void Com::check_timeouts() {
  for (auto& [name, pdu] : rx_) {
    if (pdu.cfg.rx_timeout <= 0 || pdu.timed_out) continue;
    const Time deadline =
        (pdu.last_rx < 0 ? pdu.cfg.rx_timeout
                         : pdu.last_rx + pdu.cfg.rx_timeout);
    if (kernel_.now() > deadline) {
      pdu.timed_out = true;
      ++rx_timeouts_;
      trace_.emit(kernel_.now(), "com.rx_timeout", name);
      if (timeout_cb_) timeout_cb_(name);
    }
  }
}

}  // namespace orte::bsw
