#include "bsw/dcm.hpp"

namespace orte::bsw {

Dcm::Dcm(sim::Kernel& kernel, sim::Trace& trace, Dem& dem)
    : kernel_(kernel), trace_(trace), dem_(dem) {}

void Dcm::add_did(std::uint16_t did, DidReader reader) {
  dids_[did] = std::move(reader);
}

std::vector<std::uint8_t> Dcm::handle(
    const std::vector<std::uint8_t>& request) {
  ++requests_;
  if (request.empty()) return negative(0x00, kNrcInvalidFormat);
  const std::uint8_t sid = request[0];
  trace_.emit(kernel_.now(), "dcm.request", "dcm", sid);
  switch (sid) {
    case 0x10: return session_control(request);
    case 0x14: return clear_dtcs(request);
    case 0x19: return read_dtcs(request);
    case 0x22: return read_did(request);
    case 0x3E:  // TesterPresent
      if (request.size() != 2) return negative(sid, kNrcInvalidFormat);
      return {0x7E, request[1]};
    default:
      return negative(sid, kNrcServiceNotSupported);
  }
}

std::vector<std::uint8_t> Dcm::session_control(
    const std::vector<std::uint8_t>& request) {
  if (request.size() != 2) return negative(0x10, kNrcInvalidFormat);
  switch (request[1]) {
    case 0x01: session_ = Session::kDefault; break;
    case 0x03: session_ = Session::kExtended; break;
    default: return negative(0x10, kNrcSubFunctionNotSupported);
  }
  trace_.emit(kernel_.now(), "dcm.session", "dcm", request[1]);
  return {0x50, request[1]};
}

std::vector<std::uint8_t> Dcm::clear_dtcs(
    const std::vector<std::uint8_t>& request) {
  if (request.size() != 4) return negative(0x14, kNrcInvalidFormat);
  if (session_ != Session::kExtended) {
    return negative(0x14, kNrcNotSupportedInSession);
  }
  dem_.clear_all();
  return {0x54};
}

std::vector<std::uint8_t> Dcm::read_dtcs(
    const std::vector<std::uint8_t>& request) {
  if (request.size() != 3) return negative(0x19, kNrcInvalidFormat);
  if (request[1] != 0x02) return negative(0x19, kNrcSubFunctionNotSupported);
  const std::uint8_t mask = request[2];
  std::vector<std::uint8_t> response{0x59, 0x02, mask};
  for (const auto& dtc : dem_.stored_dtcs()) {
    // Status byte: bit0 testFailed (confirmed), bit3 confirmedDTC (stored).
    const std::uint8_t status =
        static_cast<std::uint8_t>((dtc.confirmed ? 0x01 : 0x00) | 0x08);
    if ((status & mask) == 0 && mask != 0xFF) continue;
    response.push_back(static_cast<std::uint8_t>(dtc.code >> 16));
    response.push_back(static_cast<std::uint8_t>(dtc.code >> 8));
    response.push_back(static_cast<std::uint8_t>(dtc.code));
    response.push_back(status);
  }
  return response;
}

std::vector<std::uint8_t> Dcm::read_did(
    const std::vector<std::uint8_t>& request) {
  if (request.size() != 3) return negative(0x22, kNrcInvalidFormat);
  const std::uint16_t did = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(request[1]) << 8) | request[2]);
  auto it = dids_.find(did);
  if (it == dids_.end()) return negative(0x22, kNrcRequestOutOfRange);
  std::vector<std::uint8_t> response{0x62, request[1], request[2]};
  const auto data = it->second();
  response.insert(response.end(), data.begin(), data.end());
  return response;
}

}  // namespace orte::bsw
