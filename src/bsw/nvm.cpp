#include "bsw/nvm.hpp"

#include <stdexcept>

namespace orte::bsw {

std::uint16_t crc16(const std::vector<std::uint8_t>& data) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

NvM::NvM(sim::Trace& trace) : trace_(trace) {}

void NvM::add_block(NvBlockConfig cfg) {
  if (cfg.length == 0) throw std::invalid_argument("NvM block length == 0");
  const std::string name = cfg.name;
  Block block;
  block.copies.resize(cfg.redundant ? 2 : 1);
  for (auto& c : block.copies) c.data.assign(cfg.length, 0);
  block.cfg = std::move(cfg);
  if (!blocks_.emplace(name, std::move(block)).second) {
    throw std::invalid_argument("duplicate NvM block: " + name);
  }
}

NvM::Block& NvM::find(std::string_view name) {
  auto it = blocks_.find(name);
  if (it == blocks_.end()) {
    throw std::invalid_argument("unknown NvM block");
  }
  return it->second;
}

void NvM::write(std::string_view block, std::vector<std::uint8_t> data) {
  Block& b = find(block);
  if (data.size() != b.cfg.length) {
    throw std::invalid_argument("NvM write size mismatch");
  }
  for (auto& copy : b.copies) {
    copy.data = data;
    copy.crc = crc16(data);
    copy.written = true;
  }
  trace_.emit(0, "nvm.write", b.cfg.name);
}

std::optional<std::vector<std::uint8_t>> NvM::read(std::string_view block) {
  Block& b = find(block);
  int valid = -1;
  for (std::size_t i = 0; i < b.copies.size(); ++i) {
    const Copy& c = b.copies[i];
    if (c.written && crc16(c.data) == c.crc) {
      valid = static_cast<int>(i);
      break;
    }
  }
  if (valid == -1) {
    ++fatal_;
    trace_.emit(0, "nvm.read_failed", b.cfg.name);
    if (failure_cb_) failure_cb_(b.cfg.name, /*fatal=*/true);
    return std::nullopt;
  }
  // Repair any stale/corrupt copy from the valid one.
  bool repaired = false;
  for (auto& c : b.copies) {
    if (!c.written || crc16(c.data) != c.crc) {
      c = b.copies[static_cast<std::size_t>(valid)];
      repaired = true;
    }
  }
  if (repaired) {
    ++recoveries_;
    trace_.emit(0, "nvm.recovered", b.cfg.name);
    if (failure_cb_) failure_cb_(b.cfg.name, /*fatal=*/false);
  }
  return b.copies[static_cast<std::size_t>(valid)].data;
}

void NvM::corrupt(std::string_view block, std::size_t byte, std::size_t copy) {
  Block& b = find(block);
  if (copy >= b.copies.size() || byte >= b.cfg.length) {
    throw std::invalid_argument("NvM::corrupt out of range");
  }
  b.copies[copy].data[byte] ^= 0xA5;
  trace_.emit(0, "nvm.corrupted", b.cfg.name);
}

}  // namespace orte::bsw
