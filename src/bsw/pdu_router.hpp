// PDU Router: gateway routing between bus controllers (Figure 1's "Gateway"
// block). Forwards matching frames from one network to another after a
// configurable processing latency, optionally remapping the identifier —
// the store-and-forward hop that the federated architecture pays for every
// inter-DAS signal (experiment E7).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace orte::bsw {

struct GatewayRoute {
  std::uint32_t match_id = 0;
  std::optional<std::uint32_t> remap_id;  ///< Keep original when empty.
  sim::Duration processing = sim::microseconds(200);
};

class PduRouter {
 public:
  PduRouter(sim::Kernel& kernel, sim::Trace& trace, std::string name);

  /// Forward frames with `route.match_id` arriving at `from` onto `to`.
  void add_route(net::Controller& from, net::Controller& to,
                 GatewayRoute route);

  [[nodiscard]] std::uint64_t frames_forwarded() const { return forwarded_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  sim::Kernel& kernel_;
  sim::Trace& trace_;
  std::string name_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace orte::bsw
