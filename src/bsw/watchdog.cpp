#include "bsw/watchdog.hpp"

#include <stdexcept>

namespace orte::bsw {

WatchdogManager::WatchdogManager(sim::Kernel& kernel, sim::Trace& trace,
                                 sim::Duration supervision_cycle)
    : kernel_(kernel), trace_(trace), cycle_len_(supervision_cycle) {
  if (supervision_cycle <= 0) {
    throw std::invalid_argument("supervision cycle must be positive");
  }
}

void WatchdogManager::supervise(SupervisionConfig cfg) {
  const std::string name = cfg.entity;
  Entity e;
  e.cfg = std::move(cfg);
  if (!entities_.emplace(name, std::move(e)).second) {
    throw std::invalid_argument("duplicate supervised entity: " + name);
  }
}

void WatchdogManager::checkpoint(std::string_view entity) {
  auto it = entities_.find(entity);
  if (it == entities_.end()) {
    throw std::invalid_argument("checkpoint from unsupervised entity");
  }
  ++it->second.count;
}

void WatchdogManager::start() {
  if (started_) throw std::logic_error("WatchdogManager::start called twice");
  started_ = true;
  kernel_.schedule_periodic(kernel_.now() + cycle_len_, cycle_len_,
                            [this] { cycle(); }, sim::EventOrder::kObserver);
}

bool WatchdogManager::is_expired(std::string_view entity) const {
  auto it = entities_.find(entity);
  return it != entities_.end() && it->second.expired;
}

void WatchdogManager::cycle() {
  for (auto& [name, e] : entities_) {
    const bool ok = e.count >= e.cfg.min_indications &&
                    e.count <= e.cfg.max_indications;
    if (ok) {
      e.failed_cycles = 0;
    } else {
      ++e.failed_cycles;
      if (e.failed_cycles > e.cfg.failed_cycles_tolerance && !e.expired) {
        e.expired = true;
        ++violations_;
        trace_.emit(kernel_.now(), "wdg.violation", name, e.count);
        if (violation_cb_) violation_cb_(name, e.count);
      }
    }
    e.count = 0;
  }
}

}  // namespace orte::bsw
