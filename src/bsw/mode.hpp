// Mode management (§2: "can also be used as a means for mode management").
//
// A ModeMachine holds a finite set of declared modes and an explicit
// transition relation; requests for undeclared transitions are rejected and
// reported — consistent, non-ambiguous error handling per the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace orte::bsw {

class ModeMachine {
 public:
  using ModeCallback =
      std::function<void(const std::string& from, const std::string& to)>;

  ModeMachine(sim::Kernel& kernel, sim::Trace& trace, std::string name,
              std::string initial_mode);

  /// Declare a mode; the initial mode is declared implicitly.
  void add_mode(std::string mode);
  /// Allow the transition from -> to.
  void add_transition(std::string from, std::string to);

  /// Request a mode switch; returns false (and traces "mode.rejected") when
  /// the transition is not declared.
  bool request(std::string_view target);

  [[nodiscard]] const std::string& current() const { return current_; }
  [[nodiscard]] bool in(std::string_view mode) const {
    return current_ == mode;
  }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

  void on_transition(ModeCallback cb) { callbacks_.push_back(std::move(cb)); }

 private:
  sim::Kernel& kernel_;
  sim::Trace& trace_;
  std::string name_;
  std::string current_;
  std::set<std::string, std::less<>> modes_;
  std::set<std::pair<std::string, std::string>> allowed_;
  std::vector<ModeCallback> callbacks_;
  std::uint64_t transitions_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace orte::bsw
