// Diagnostic Communication Manager: a UDS (ISO 14229) service subset over
// the DEM — the tester-facing half of Figure 1's "Diagnostics" block.
//
// Supported services:
//   0x10 DiagnosticSessionControl (01 default, 03 extended)
//   0x14 ClearDiagnosticInformation
//   0x19 ReadDTCInformation (sub 0x02: report DTCs by status mask)
//   0x22 ReadDataByIdentifier (application-registered data sources)
//   0x3E TesterPresent
// Responses follow UDS framing: positive = SID+0x40 ..., negative =
// 0x7F SID NRC. Clearing and DID reads outside the extended session are
// rejected with NRC 0x7F (serviceNotSupportedInActiveSession).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "bsw/dem.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace orte::bsw {

/// UDS negative response codes used here.
enum : std::uint8_t {
  kNrcServiceNotSupported = 0x11,
  kNrcSubFunctionNotSupported = 0x12,
  kNrcInvalidFormat = 0x13,
  kNrcRequestOutOfRange = 0x31,
  kNrcNotSupportedInSession = 0x7F,
};

class Dcm {
 public:
  enum class Session : std::uint8_t { kDefault = 0x01, kExtended = 0x03 };
  using DidReader = std::function<std::vector<std::uint8_t>()>;

  Dcm(sim::Kernel& kernel, sim::Trace& trace, Dem& dem);

  /// Register a data identifier (service 0x22 source).
  void add_did(std::uint16_t did, DidReader reader);

  /// Handle one diagnostic request, returning the UDS response bytes.
  std::vector<std::uint8_t> handle(const std::vector<std::uint8_t>& request);

  [[nodiscard]] Session session() const { return session_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }

 private:
  static std::vector<std::uint8_t> negative(std::uint8_t sid,
                                            std::uint8_t nrc) {
    return {0x7F, sid, nrc};
  }

  std::vector<std::uint8_t> session_control(
      const std::vector<std::uint8_t>& request);
  std::vector<std::uint8_t> clear_dtcs(
      const std::vector<std::uint8_t>& request);
  std::vector<std::uint8_t> read_dtcs(
      const std::vector<std::uint8_t>& request);
  std::vector<std::uint8_t> read_did(
      const std::vector<std::uint8_t>& request);

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  Dem& dem_;
  Session session_ = Session::kDefault;
  std::map<std::uint16_t, DidReader> dids_;
  std::uint64_t requests_ = 0;
};

}  // namespace orte::bsw
