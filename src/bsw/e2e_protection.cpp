#include "bsw/e2e_protection.hpp"

#include <stdexcept>

namespace orte::bsw {

std::uint8_t crc8(const std::vector<std::uint8_t>& data, std::uint8_t start) {
  std::uint8_t crc = start;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x80) ? static_cast<std::uint8_t>((crc << 1) ^ 0x1D)
                         : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return static_cast<std::uint8_t>(crc ^ 0xFF);  // final XOR per J1850
}

namespace {
// Frame layout: [0] = counter (low nibble), [1] = crc, [2..] = payload.
constexpr std::size_t kHeaderBytes = 2;

std::uint8_t compute_crc(std::uint16_t data_id, std::uint8_t counter,
                         const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> buf;
  buf.reserve(3 + payload.size());
  buf.push_back(static_cast<std::uint8_t>(data_id & 0xFF));
  buf.push_back(static_cast<std::uint8_t>(data_id >> 8));
  buf.push_back(counter);
  buf.insert(buf.end(), payload.begin(), payload.end());
  return crc8(buf);
}
}  // namespace

std::vector<std::uint8_t> E2eProtector::protect(
    std::vector<std::uint8_t> payload) {
  counter_ = static_cast<std::uint8_t>((counter_ + 1) & 0x0F);
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.push_back(counter_);
  frame.push_back(compute_crc(cfg_.data_id, counter_, payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

E2eChecker::Result E2eChecker::check(const std::vector<std::uint8_t>& frame) {
  Result result;
  if (frame.size() < kHeaderBytes) {
    result.status = E2eStatus::kWrongCrc;
    ++errors_;
    return result;
  }
  const std::uint8_t counter = frame[0] & 0x0F;
  const std::uint8_t crc = frame[1];
  std::vector<std::uint8_t> payload(frame.begin() + kHeaderBytes, frame.end());
  if (compute_crc(cfg_.data_id, counter, payload) != crc) {
    result.status = E2eStatus::kWrongCrc;
    ++errors_;
    return result;
  }
  if (!have_counter_) {
    have_counter_ = true;
    last_counter_ = counter;
    result.status = E2eStatus::kOk;
    result.payload = std::move(payload);
    ++ok_;
    return result;
  }
  const std::uint8_t delta =
      static_cast<std::uint8_t>((counter - last_counter_) & 0x0F);
  last_counter_ = counter;
  if (delta == 0) {
    result.status = E2eStatus::kRepeated;
    ++errors_;
  } else if (delta == 1) {
    result.status = E2eStatus::kOk;
    result.payload = std::move(payload);
    ++ok_;
  } else if (delta <= cfg_.max_delta) {
    result.status = E2eStatus::kOkSomeLost;
    result.payload = std::move(payload);
    ++ok_;
  } else {
    result.status = E2eStatus::kWrongSequence;
    ++errors_;
  }
  return result;
}

}  // namespace orte::bsw
