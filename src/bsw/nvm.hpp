// NvM memory services (§2 / Figure 1: "Memory Services", error-handling use
// case "memory failures").
//
// Blocks are CRC16-protected; redundant blocks keep two copies and fall back
// to the surviving copy on CRC mismatch, reporting the failure to DEM when
// wired up. Corruption injection exercises the recovery path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/trace.hpp"

namespace orte::bsw {

/// CRC-16/CCITT-FALSE over the buffer.
std::uint16_t crc16(const std::vector<std::uint8_t>& data);

struct NvBlockConfig {
  std::string name;
  std::size_t length = 0;
  bool redundant = false;  ///< Keep a mirrored second copy.
};

class NvM {
 public:
  /// Invoked with the block name on unrecoverable (or recovered) failures.
  using FailureCallback = std::function<void(const std::string&, bool fatal)>;

  explicit NvM(sim::Trace& trace);

  void add_block(NvBlockConfig cfg);

  /// Write data (must match the configured length) to all copies.
  void write(std::string_view block, std::vector<std::uint8_t> data);

  /// Read with CRC check; redundant blocks repair from the mirror. Returns
  /// nullopt (and reports fatal) when no valid copy exists.
  std::optional<std::vector<std::uint8_t>> read(std::string_view block);

  /// Fault injection: flip a bit in copy `copy` (0 or 1) of the block.
  void corrupt(std::string_view block, std::size_t byte, std::size_t copy = 0);

  void on_failure(FailureCallback cb) { failure_cb_ = std::move(cb); }

  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] std::uint64_t fatal_failures() const { return fatal_; }

 private:
  struct Copy {
    std::vector<std::uint8_t> data;
    std::uint16_t crc = 0;
    bool written = false;
  };
  struct Block {
    NvBlockConfig cfg;
    std::vector<Copy> copies;
  };

  Block& find(std::string_view name);

  sim::Trace& trace_;
  std::map<std::string, Block, std::less<>> blocks_;
  FailureCallback failure_cb_;
  std::uint64_t recoveries_ = 0;
  std::uint64_t fatal_ = 0;
};

}  // namespace orte::bsw
