// Diagnostic Event Manager (DEM): the paper's "consistent and non ambiguous
// error handling ... used for mode management and diagnostic purposes. Use
// cases include broken sensors, communication errors and memory failures."
//
// Events debounce with a counter (+1 failed, -1 passed, latch at threshold);
// a latched event stores/updates a DTC with occurrence bookkeeping and ages
// out after a configurable number of fault-free operation cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace orte::bsw {

enum class EventStatus { kPassed, kFailed };

struct DemEventConfig {
  std::string name;
  std::int32_t debounce_threshold = 1;  ///< Failures needed to latch.
  std::uint32_t aging_cycles = 3;       ///< Fault-free cycles to clear DTC.
  std::uint32_t dtc_code = 0;           ///< 3-byte DTC number (UDS reports).
};

struct Dtc {
  std::string event;
  std::uint32_t code = 0;  ///< Numeric DTC (for the DCM / testers).
  std::uint32_t occurrence_count = 0;
  sim::Time first_occurrence = 0;
  sim::Time last_occurrence = 0;
  bool confirmed = true;  ///< False once aging started (healed but stored).
  std::uint32_t aged = 0;  ///< Fault-free cycles seen so far.
};

class Dem {
 public:
  using DtcCallback = std::function<void(const Dtc&)>;

  Dem(sim::Kernel& kernel, sim::Trace& trace);

  void add_event(DemEventConfig cfg);

  /// Report a monitor result for an event (broken sensor, rx timeout, ...).
  void report(std::string_view event, EventStatus status);

  /// End of one operation cycle (ignition cycle): aging of healed DTCs.
  void operation_cycle_end();

  /// UDS ClearDiagnosticInformation: drop all stored DTCs and reset
  /// debounce state.
  void clear_all();

  [[nodiscard]] bool is_failed(std::string_view event) const;
  [[nodiscard]] std::optional<Dtc> dtc(std::string_view event) const;
  [[nodiscard]] std::vector<Dtc> stored_dtcs() const;
  [[nodiscard]] std::uint64_t reports() const { return reports_; }

  /// Invoked when an event first latches (fresh DTC or re-occurrence).
  void on_dtc_stored(DtcCallback cb) { callbacks_.push_back(std::move(cb)); }

  /// Invoked when a healed DTC completes aging and is erased (receives a
  /// copy of its final state). Fires after the whole aging sweep of an
  /// operation cycle, so callbacks may query/report this Dem freely — this
  /// is the hook the rv layer uses to close the error-handling loop
  /// (release quarantine, request recovery mode).
  void on_aged_out(DtcCallback cb) {
    aged_out_callbacks_.push_back(std::move(cb));
  }

 private:
  struct EventState {
    DemEventConfig cfg;
    std::int32_t debounce = 0;
    bool failed = false;
  };

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  std::map<std::string, EventState, std::less<>> events_;
  std::map<std::string, Dtc, std::less<>> dtcs_;
  std::vector<DtcCallback> callbacks_;
  std::vector<DtcCallback> aged_out_callbacks_;
  std::uint64_t reports_ = 0;
};

}  // namespace orte::bsw
