#include "bsw/dem.hpp"

#include <stdexcept>

namespace orte::bsw {

Dem::Dem(sim::Kernel& kernel, sim::Trace& trace)
    : kernel_(kernel), trace_(trace) {}

void Dem::add_event(DemEventConfig cfg) {
  if (cfg.debounce_threshold < 1) {
    throw std::invalid_argument("debounce threshold must be >= 1");
  }
  const std::string name = cfg.name;
  EventState st;
  st.cfg = std::move(cfg);
  if (!events_.emplace(name, std::move(st)).second) {
    throw std::invalid_argument("duplicate DEM event: " + name);
  }
}

void Dem::report(std::string_view event, EventStatus status) {
  auto it = events_.find(event);
  if (it == events_.end()) {
    throw std::invalid_argument("Dem::report: unknown event");
  }
  ++reports_;
  EventState& st = it->second;
  if (status == EventStatus::kFailed) {
    if (st.debounce < st.cfg.debounce_threshold) ++st.debounce;
    if (st.failed) {
      // The fault is still present: keep the stored DTC's freshness
      // timestamp moving so testers see *when* it last misbehaved, not
      // just when it latched.
      auto dit = dtcs_.find(st.cfg.name);
      if (dit != dtcs_.end()) dit->second.last_occurrence = kernel_.now();
    }
    if (!st.failed && st.debounce >= st.cfg.debounce_threshold) {
      st.failed = true;
      auto [dit, fresh] = dtcs_.try_emplace(st.cfg.name);
      Dtc& dtc = dit->second;
      if (fresh) {
        dtc.event = st.cfg.name;
        dtc.code = st.cfg.dtc_code;
        dtc.first_occurrence = kernel_.now();
      }
      ++dtc.occurrence_count;
      dtc.last_occurrence = kernel_.now();
      dtc.confirmed = true;
      dtc.aged = 0;
      trace_.emit(kernel_.now(), "dem.dtc_stored", st.cfg.name,
                  dtc.occurrence_count);
      for (const auto& cb : callbacks_) cb(dtc);
    }
  } else {
    if (st.debounce > 0) --st.debounce;
    if (st.failed && st.debounce == 0) {
      st.failed = false;
      auto dit = dtcs_.find(st.cfg.name);
      if (dit != dtcs_.end()) dit->second.confirmed = false;
      trace_.emit(kernel_.now(), "dem.healed", st.cfg.name);
    }
  }
}

void Dem::operation_cycle_end() {
  // Collect first, notify after the sweep: callbacks may query stored_dtcs()
  // or report events, which must not race the erase loop.
  std::vector<Dtc> aged_out;
  for (auto it = dtcs_.begin(); it != dtcs_.end();) {
    Dtc& dtc = it->second;
    if (!dtc.confirmed) {
      ++dtc.aged;
      const auto eit = events_.find(dtc.event);
      const std::uint32_t limit =
          eit != events_.end() ? eit->second.cfg.aging_cycles : 3;
      if (dtc.aged >= limit) {
        trace_.emit(kernel_.now(), "dem.dtc_aged_out", dtc.event);
        aged_out.push_back(dtc);
        it = dtcs_.erase(it);
        continue;
      }
    }
    ++it;
  }
  for (const auto& dtc : aged_out) {
    for (const auto& cb : aged_out_callbacks_) cb(dtc);
  }
}

void Dem::clear_all() {
  dtcs_.clear();
  for (auto& [name, st] : events_) {
    st.debounce = 0;
    st.failed = false;
  }
  trace_.emit(kernel_.now(), "dem.cleared", "all");
}

bool Dem::is_failed(std::string_view event) const {
  auto it = events_.find(event);
  return it != events_.end() && it->second.failed;
}

std::optional<Dtc> Dem::dtc(std::string_view event) const {
  auto it = dtcs_.find(event);
  if (it == dtcs_.end()) return std::nullopt;
  return it->second;
}

std::vector<Dtc> Dem::stored_dtcs() const {
  std::vector<Dtc> out;
  out.reserve(dtcs_.size());
  for (const auto& [name, dtc] : dtcs_) out.push_back(dtc);
  return out;
}

}  // namespace orte::bsw
