#include "bsw/pdu_router.hpp"

namespace orte::bsw {

PduRouter::PduRouter(sim::Kernel& kernel, sim::Trace& trace, std::string name)
    : kernel_(kernel), trace_(trace), name_(std::move(name)) {}

void PduRouter::add_route(net::Controller& from, net::Controller& to,
                          GatewayRoute route) {
  net::Controller* out = &to;
  from.on_receive([this, out, route](const net::Frame& frame) {
    if (frame.id != route.match_id) return;
    net::Frame copy = frame;
    if (route.remap_id.has_value()) copy.id = *route.remap_id;
    kernel_.schedule_in(route.processing,
                        [this, out, copy]() mutable {
                          copy.enqueued_at = kernel_.now();
                          ++forwarded_;
                          trace_.emit(kernel_.now(), "gw.forward", name_,
                                      copy.id);
                          out->send(std::move(copy));
                        },
                        sim::EventOrder::kSoftware);
  });
}

}  // namespace orte::bsw
