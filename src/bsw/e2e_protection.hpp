// End-to-end communication protection (AUTOSAR E2E profile 1 style).
//
// §2's error-handling use cases include "communication errors": COM only
// protects the link layer; safety-critical signals additionally carry an
// alive counter and a CRC over payload+counter+data-id so the *receiver
// application* can detect corruption, masquerading, loss, duplication and
// stale data regardless of which layer failed. This is the mechanism that
// lets SWCs of different criticality share one bus (§4).
#pragma once

#include <cstdint>
#include <vector>

namespace orte::bsw {

/// CRC-8 SAE J1850 (poly 0x1D), as used by E2E profile 1.
std::uint8_t crc8(const std::vector<std::uint8_t>& data,
                  std::uint8_t start = 0xFF);

enum class E2eStatus {
  kOk,           ///< Fresh, intact data; counter advanced by exactly 1.
  kOkSomeLost,   ///< Intact, but 2..max_delta counter steps: tolerable loss.
  kRepeated,     ///< Same counter as last time: stale or duplicated.
  kWrongCrc,     ///< Corruption or masquerading (data-id mismatch).
  kWrongSequence,///< Counter jumped beyond the configured tolerance.
  kNoNewData,    ///< check() called without a reception.
};

struct E2eConfig {
  std::uint16_t data_id = 0;      ///< Guards against masquerading.
  std::uint8_t max_delta = 2;     ///< Tolerated counter advance per check.
};

/// Sender side: wraps a payload with [counter | crc] header.
class E2eProtector {
 public:
  explicit E2eProtector(E2eConfig cfg) : cfg_(cfg) {}

  /// Returns header + payload; advances the alive counter (wraps at 0x0F,
  /// per profile 1's 4-bit counter).
  std::vector<std::uint8_t> protect(std::vector<std::uint8_t> payload);

  [[nodiscard]] std::uint8_t counter() const { return counter_; }

 private:
  E2eConfig cfg_;
  std::uint8_t counter_ = 0;
};

/// Receiver side: validates and strips the header.
class E2eChecker {
 public:
  explicit E2eChecker(E2eConfig cfg) : cfg_(cfg) {}

  struct Result {
    E2eStatus status = E2eStatus::kNoNewData;
    std::vector<std::uint8_t> payload;  ///< Valid only when status is Ok*.
  };
  Result check(const std::vector<std::uint8_t>& frame);

  [[nodiscard]] std::uint64_t ok_count() const { return ok_; }
  [[nodiscard]] std::uint64_t error_count() const { return errors_; }

 private:
  E2eConfig cfg_;
  bool have_counter_ = false;
  std::uint8_t last_counter_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace orte::bsw
