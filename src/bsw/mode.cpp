#include "bsw/mode.hpp"

#include <stdexcept>

namespace orte::bsw {

ModeMachine::ModeMachine(sim::Kernel& kernel, sim::Trace& trace,
                         std::string name, std::string initial_mode)
    : kernel_(kernel),
      trace_(trace),
      name_(std::move(name)),
      current_(std::move(initial_mode)) {
  modes_.insert(current_);
}

void ModeMachine::add_mode(std::string mode) { modes_.insert(std::move(mode)); }

void ModeMachine::add_transition(std::string from, std::string to) {
  if (modes_.find(from) == modes_.end() || modes_.find(to) == modes_.end()) {
    throw std::invalid_argument("transition references undeclared mode");
  }
  allowed_.emplace(std::move(from), std::move(to));
}

bool ModeMachine::request(std::string_view target) {
  const std::string to(target);
  if (current_ == to) return true;  // already there
  if (allowed_.find({current_, to}) == allowed_.end()) {
    ++rejected_;
    trace_.emit(kernel_.now(), "mode.rejected", name_, 0, to);
    return false;
  }
  const std::string from = current_;
  current_ = to;
  ++transitions_;
  trace_.emit(kernel_.now(), "mode.switch", name_, 0, from + "->" + to);
  for (const auto& cb : callbacks_) cb(from, to);
  return true;
}

}  // namespace orte::bsw
