// Online contract monitors: each compiles one clause of a rich-component
// contract (TimingSpec period/jitter, deadline, end-to-end latency, or a
// behavioural timed automaton) into an incremental observer of the live
// sim::Trace stream. Monitors never consume simulated time — they run in
// trace-listener context, so attaching them cannot perturb the execution
// they judge (the determinism requirement the experiments rest on).
//
// Nandi et al. (stochastic contracts for runtime checking) is the template:
// design-time contract -> synthesized observer -> structured verdict.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "contracts/contract.hpp"
#include "rv/health.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace orte::rv {

/// Base of every online monitor. A monitor declares the (category, subject)
/// pairs it consumes; the MonitorRegistry routes matching records to
/// observe() and receives raised violations through the bound sink.
class Monitor {
 public:
  using Sink = std::function<void(const Violation&)>;

  /// One routing key. An empty subject means "every subject of the
  /// category" — the registry keeps those in a per-category wildcard
  /// bucket; non-empty subjects are reached through the
  /// (category_id, subject_id) index in one hash lookup.
  struct Subscription {
    std::string category;
    std::string subject;
  };

  virtual ~Monitor() = default;
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Routing keys this monitor wants to see.
  [[nodiscard]] virtual std::vector<Subscription> subscriptions() const = 0;

  /// Called once by the registry at attach() time with the trace this
  /// monitor will observe: resolve spec strings into interned TraceIds so
  /// observe() compares integers, never strings.
  virtual void prepare(sim::Trace& trace) { (void)trace; }

  /// Observe one routed emission. The TraceEvent view carries interned IDs
  /// only (no name strings) — the registry reaches this through the
  /// Trace::subscribe_ids fast path, so a monitored run never materializes
  /// per-record strings; name lookups (for violation reports) go through
  /// the Trace handed to prepare().
  virtual void observe(const sim::TraceEvent& rec) = 0;

  /// Re-anchor incremental expectations after a gap the monitor must not
  /// judge (the registry calls this when a contract is rehabilitated after
  /// a DTC aged out): forget the last arrival / pending causes / automaton
  /// progress, keep the cumulative observation count.
  virtual void resync() {}

  void bind(Sink sink) { sink_ = std::move(sink); }
  [[nodiscard]] const std::string& contract() const { return contract_; }
  [[nodiscard]] std::uint64_t raised() const { return raised_; }
  /// Total judged observations (conforming and violating alike) — the
  /// denominator of the contract's violation budget. The registry sums this
  /// per contract (MonitorRegistry::flush) to drive rate-based health.
  [[nodiscard]] std::uint64_t observations() const { return observations_; }
  /// Confidence of the spec this monitor enforces (budget numerator side).
  [[nodiscard]] double confidence() const { return confidence_; }

 protected:
  explicit Monitor(std::string contract, double confidence = 1.0)
      : contract_(std::move(contract)), confidence_(confidence) {}
  void raise(Violation v);
  /// Count one judged observation (call once per verdict, either way).
  void note_observation() { ++observations_; }

  std::string contract_;

 private:
  Sink sink_;
  std::uint64_t raised_ = 0;
  std::uint64_t observations_ = 0;
  double confidence_ = 1.0;
};

// --- Arrival-rate / jitter ----------------------------------------------------

/// Watches the update stream of one flow (default: "rte.write" of a sender
/// key) and checks every inter-arrival time against the contracted period
/// and jitter: with jitter J > 0 the interval must stay in [P-J, P+J]; with
/// J = 0 only late updates (interval > P) violate, since faster-than-
/// promised updates refine the guarantee (contracts::satisfies semantics).
struct ArrivalSpec {
  std::string contract;
  std::string subject;  ///< Trace subject to match (e.g. "pedal.pedal.stamp").
  std::string category = "rte.write";
  sim::Duration period = 0;  ///< Contracted update period (ns); 0 = skip.
  sim::Duration jitter = 0;  ///< Allowed deviation from the period (ns).
  double confidence = 1.0;
  /// Also watch "rte.quarantine_drop" of the same subject, so a quarantined
  /// component stays under observation through its suppressed writes — the
  /// DEM can only certify recovery (and age the contract's DTC out) if the
  /// component demonstrably behaves again while still sanctioned.
  bool observe_quarantined = true;
};

class ArrivalMonitor final : public Monitor {
 public:
  explicit ArrivalMonitor(ArrivalSpec spec);
  [[nodiscard]] std::vector<Subscription> subscriptions() const override;
  void prepare(sim::Trace& trace) override;
  void observe(const sim::TraceEvent& rec) override;
  void resync() override;
  [[nodiscard]] std::uint64_t arrivals() const { return arrivals_; }

 private:
  ArrivalSpec spec_;
  sim::TraceId subject_id_ = sim::kNoTraceId;
  sim::Time last_ = -1;
  std::uint64_t arrivals_ = 0;
  std::uint64_t streak_ = 0;
};

// --- Deadline / response time -------------------------------------------------

/// Watches one task's lifecycle records: every "task.deadline_miss" raises a
/// deadline violation, and, when an explicit response bound is configured,
/// every "task.complete" whose response time (the record value) exceeds it
/// raises a response violation — tighter-than-deadline latency guarantees
/// are checkable without touching the OS layer.
struct DeadlineSpec {
  std::string contract;
  std::string task;  ///< Generated task name ("tk|<instance>|...").
  sim::Duration deadline = 0;        ///< Reported bound for miss records.
  sim::Duration response_bound = 0;  ///< 0 = deadline-miss records only.
  double confidence = 1.0;
};

class DeadlineMonitor final : public Monitor {
 public:
  explicit DeadlineMonitor(DeadlineSpec spec);
  [[nodiscard]] std::vector<Subscription> subscriptions() const override;
  void prepare(sim::Trace& trace) override;
  void observe(const sim::TraceEvent& rec) override;
  void resync() override;
  [[nodiscard]] std::uint64_t completions() const { return completions_; }

 private:
  DeadlineSpec spec_;
  sim::TraceId task_id_ = sim::kNoTraceId;
  sim::TraceId miss_category_id_ = sim::kNoTraceId;
  std::uint64_t completions_ = 0;
  std::uint64_t miss_streak_ = 0;
};

// --- End-to-end chain latency -------------------------------------------------

/// Measures producer-to-consumer latency over a cause-effect chain: source
/// events (e.g. "rte.write" of the chain head's sender key) enqueue their
/// timestamps; each sink event (e.g. "rte.runnable" of the chain tail)
/// consumes the oldest pending timestamp — exact for 1:1 activation chains
/// (data-received pipelines), conservative under sink overload because the
/// oldest unconsumed cause keeps aging. The queue is bounded: when the sink
/// falls more than `max_in_flight` events behind, the oldest cause is
/// reported as a latency violation with the age it reached and dropped.
struct LatencySpec {
  std::string contract;
  std::string source_subject;
  std::string source_category = "rte.write";
  std::string sink_subject;
  std::string sink_category = "rte.runnable";
  std::string sink_detail;  ///< Optional: also match record detail
                            ///< (runnable name); empty = any.
  sim::Duration bound = 0;  ///< Max pedal-to-actuator age (ns).
  /// Holistic worst-case bound of the watched chain, computed at generation
  /// time (validation::analyze_chains) and recorded here so the static and
  /// dynamic layers sit side by side: a sound static analysis implies
  /// worst() <= static_bound on every run. 0 = not statically bounded.
  sim::Duration static_bound = 0;
  double confidence = 1.0;
  std::size_t max_in_flight = 64;
};

class LatencyMonitor final : public Monitor {
 public:
  explicit LatencyMonitor(LatencySpec spec);
  [[nodiscard]] std::vector<Subscription> subscriptions() const override;
  void prepare(sim::Trace& trace) override;
  void observe(const sim::TraceEvent& rec) override;
  void resync() override;
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] sim::Duration worst() const { return worst_; }
  /// The full spec this monitor enforces — exposes the contracted bound and
  /// the static cross-check bound next to the observed worst().
  [[nodiscard]] const LatencySpec& spec() const { return spec_; }

 private:
  LatencySpec spec_;
  sim::TraceId source_category_id_ = sim::kNoTraceId;
  sim::TraceId source_subject_id_ = sim::kNoTraceId;
  sim::TraceId sink_category_id_ = sim::kNoTraceId;
  sim::TraceId sink_subject_id_ = sim::kNoTraceId;
  std::deque<sim::Time> in_flight_;
  std::uint64_t samples_ = 0;
  sim::Duration worst_ = 0;
  std::uint64_t streak_ = 0;
};

// --- Value range --------------------------------------------------------------

/// Checks every observed value of one flow against the contracted interval.
/// Guarantee-side instances watch the producer's "rte.write" records (the
/// value as the component emitted it); assumption-side instances watch the
/// consumer's "rte.deliver" records (the value as it arrived, after bus
/// transport) — the split makes in-transit corruption attributable: a clean
/// write followed by an out-of-range delivery indicts the channel, not the
/// producer.
struct RangeSpec {
  std::string contract;
  std::string subject;  ///< Trace subject to match (sender or receiver key).
  std::string category = "rte.write";
  /// Subject to blame in the violation; defaults to `subject`. Receiver-side
  /// monitors set this to the PRODUCER sender key so quarantine and DEM
  /// bookkeeping land on the component whose flow went bad, not on the
  /// victim that received the damaged value.
  std::string report_subject;
  contracts::Interval range{INT64_MIN, INT64_MAX};
  double confidence = 1.0;
};

class RangeMonitor final : public Monitor {
 public:
  explicit RangeMonitor(RangeSpec spec);
  [[nodiscard]] std::vector<Subscription> subscriptions() const override;
  void prepare(sim::Trace& trace) override;
  void observe(const sim::TraceEvent& rec) override;
  void resync() override;
  [[nodiscard]] std::uint64_t checked() const { return checked_; }

 private:
  RangeSpec spec_;
  sim::TraceId subject_id_ = sim::kNoTraceId;
  std::uint64_t checked_ = 0;
  std::uint64_t streak_ = 0;
};

// --- Behavioural timed automaton ---------------------------------------------

/// Steps a contracts::TimedAutomaton against the live trace: label rules map
/// (category, subject) records to automaton labels; each matching record
/// advances the clocks by the elapsed simulation time (scaled by `tick`) and
/// fires the first enabled edge. A stuck event or an entered error location
/// raises an "automaton" violation; the observer then resets to the initial
/// state so one glitch does not blind it for the rest of the run.
struct AutomatonSpec {
  std::string contract;
  contracts::TimedAutomaton automaton;
  struct LabelRule {
    std::string category;
    std::string subject;  ///< Empty = any subject.
    std::string label;
  };
  std::vector<LabelRule> labels;
  sim::Duration tick = 1;  ///< Simulation ns per automaton time unit.
  double confidence = 1.0;
};

class AutomatonMonitor final : public Monitor {
 public:
  explicit AutomatonMonitor(AutomatonSpec spec);
  [[nodiscard]] std::vector<Subscription> subscriptions() const override;
  void prepare(sim::Trace& trace) override;
  void observe(const sim::TraceEvent& rec) override;
  void resync() override;
  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] int location() const { return stepper_.location(); }

 private:
  /// Interned twin of one LabelRule: subject kNoTraceId = any subject.
  struct RuleIds {
    sim::TraceId category = sim::kNoTraceId;
    sim::TraceId subject = sim::kNoTraceId;
    bool any_subject = false;
  };

  AutomatonSpec spec_;
  const sim::Trace* trace_ = nullptr;  ///< For subject names in violations.
  std::vector<RuleIds> rule_ids_;      ///< Parallel to spec_.labels.
  contracts::TimedAutomaton::Stepper stepper_;
  sim::Time last_event_ = 0;
  bool anchor_pending_ = false;  ///< Next event re-anchors time (resync()).
  std::uint64_t events_ = 0;
  std::uint64_t streak_ = 0;
};

}  // namespace orte::rv
