#include "rv/health.hpp"

#include <cmath>
#include <sstream>

#include "sim/time.hpp"

namespace orte::rv {

std::uint64_t HealthReport::ContractStats::tolerated() const {
  if (confidence >= 1.0) return 0;
  const double allowance =
      (1.0 - confidence) * static_cast<double>(window_observations());
  // The epsilon keeps budgets like (1 - 0.999) * 1000 == 1 exact despite
  // the binary representation of the confidence.
  return static_cast<std::uint64_t>(std::floor(allowance + 1e-9));
}

void HealthReport::record(const Violation& v) {
  violations_.push_back(v);
  if (retention_ > 0 && violations_.size() > retention_) {
    violations_.pop_front();
  }
  ++total_;
  ++by_kind_[v.kind];
  ++by_contract_[v.contract];
  ContractStats& stats = contract_stats_[v.contract];
  ++stats.violating;
  if (v.confidence < stats.confidence) stats.confidence = v.confidence;
}

void HealthReport::note_observations(std::string_view contract,
                                     std::uint64_t total, double confidence) {
  auto it = contract_stats_.find(contract);
  if (it == contract_stats_.end()) {
    it = contract_stats_.emplace(std::string(contract), ContractStats{}).first;
  }
  ContractStats& stats = it->second;
  // Monitor observation counts are cumulative; never move backwards.
  if (total > stats.observations) stats.observations = total;
  if (confidence < stats.confidence) stats.confidence = confidence;
}

void HealthReport::close_window(std::string_view contract) {
  auto it = contract_stats_.find(contract);
  if (it == contract_stats_.end()) return;
  it->second.window_base_violating = it->second.violating;
  it->second.window_base_observations = it->second.observations;
}

void HealthReport::close_windows() {
  for (auto& [contract, stats] : contract_stats_) {
    stats.window_base_violating = stats.violating;
    stats.window_base_observations = stats.observations;
  }
}

std::size_t HealthReport::count_kind(std::string_view kind) const {
  auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? 0 : it->second;
}

std::size_t HealthReport::count_contract(std::string_view contract) const {
  auto it = by_contract_.find(contract);
  return it == by_contract_.end() ? 0 : it->second;
}

const HealthReport::ContractStats* HealthReport::stats(
    std::string_view contract) const {
  auto it = contract_stats_.find(contract);
  return it == contract_stats_.end() ? nullptr : &it->second;
}

std::vector<Violation> HealthReport::for_contract(
    std::string_view contract) const {
  std::vector<Violation> out;
  for (const auto& v : violations_) {
    if (v.contract == contract) out.push_back(v);
  }
  return out;
}

std::string HealthReport::render() const {
  std::ostringstream os;
  if (healthy()) {
    os << "health: OK (0 violations)\n";
    return os.str();
  }
  os << "health: " << total_ << " violation(s)";
  if (violations_.size() < total_) {
    os << " (showing last " << violations_.size() << ")";
  }
  os << "\n";
  for (const auto& v : violations_) {
    os << "  [" << v.kind << "] " << v.contract << " @ " << v.subject
       << ": observed " << v.observed << " vs bound " << v.bound << " at t="
       << v.when << " ns (streak " << v.streak << ", confidence "
       << v.confidence << ")";
    if (!v.detail.empty()) os << " — " << v.detail;
    os << "\n";
  }
  return os.str();
}

void HealthReport::set_retention(std::size_t cap) {
  retention_ = cap;
  if (retention_ > 0) {
    while (violations_.size() > retention_) violations_.pop_front();
  }
}

void HealthReport::clear() {
  violations_.clear();
  total_ = 0;
  by_kind_.clear();
  by_contract_.clear();
  contract_stats_.clear();
}

}  // namespace orte::rv
