#include "rv/health.hpp"

#include <sstream>

#include "sim/time.hpp"

namespace orte::rv {

void HealthReport::record(const Violation& v) {
  violations_.push_back(v);
  ++by_kind_[v.kind];
  ++by_contract_[v.contract];
}

std::size_t HealthReport::count_kind(std::string_view kind) const {
  auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? 0 : it->second;
}

std::size_t HealthReport::count_contract(std::string_view contract) const {
  auto it = by_contract_.find(contract);
  return it == by_contract_.end() ? 0 : it->second;
}

std::vector<Violation> HealthReport::for_contract(
    std::string_view contract) const {
  std::vector<Violation> out;
  for (const auto& v : violations_) {
    if (v.contract == contract) out.push_back(v);
  }
  return out;
}

std::string HealthReport::render() const {
  std::ostringstream os;
  if (healthy()) {
    os << "health: OK (0 violations)\n";
    return os.str();
  }
  os << "health: " << violations_.size() << " violation(s)\n";
  for (const auto& v : violations_) {
    os << "  [" << v.kind << "] " << v.contract << " @ " << v.subject
       << ": observed " << v.observed << " vs bound " << v.bound << " at t="
       << v.when << " ns (streak " << v.streak << ", confidence "
       << v.confidence << ")";
    if (!v.detail.empty()) os << " — " << v.detail;
    os << "\n";
  }
  return os.str();
}

void HealthReport::clear() {
  violations_.clear();
  by_kind_.clear();
  by_contract_.clear();
}

}  // namespace orte::rv
