#include "rv/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace orte::rv {

namespace {

/// The offending instance is the first path segment of the subject
/// ("instance.port.element" flow keys, "tk|instance|..." task names, or a
/// bare instance name).
std::string instance_of(const std::string& subject) {
  std::string instance = subject;
  if (instance.rfind("tk|", 0) == 0) {
    instance = instance.substr(3);
    const auto bar = instance.find('|');
    if (bar != std::string::npos) instance.resize(bar);
  } else {
    const auto dot = instance.find('.');
    if (dot != std::string::npos) instance.resize(dot);
  }
  return instance;
}

constexpr std::string_view kDemPrefix = "rv.";

}  // namespace

std::uint32_t contract_dtc_code(std::string_view contract) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : contract) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>((h ^ (h >> 24)) & 0xFFFFFFu);
}

MonitorRegistry::MonitorRegistry(sim::Trace& trace) : trace_(trace) {
  // ID-only subscription: the registry routes and delivers on interned IDs
  // exclusively, so its presence never forces the trace to materialize
  // name strings for unwatched — or even watched — records.
  trace_.subscribe_ids([this](const sim::TraceEvent& rec) {
    auto it = index_.find(rec.category_id);
    if (it == index_.end()) return;  // category nobody watches
    ++records_routed_;
    const CategoryBucket& bucket = it->second;
    bool delivered = false;
    auto sit = bucket.by_subject.find(rec.subject_id);
    if (sit != bucket.by_subject.end()) {
      delivered = true;
      for (Monitor* m : sit->second) m->observe(rec);
    }
    if (!bucket.wildcard.empty()) {
      delivered = true;
      for (Monitor* m : bucket.wildcard) m->observe(rec);
    }
    records_delivered_ += delivered ? 1 : 0;
  });
}

void MonitorRegistry::attach(Monitor& monitor) {
  monitor.bind([this](const Violation& v) { handle(v); });
  monitor.prepare(trace_);
  contracts_[monitor.contract()].monitors.push_back(&monitor);
  const auto subs = monitor.subscriptions();
  const auto enter = [&monitor](std::vector<Monitor*>& bucket) {
    if (std::find(bucket.begin(), bucket.end(), &monitor) == bucket.end()) {
      bucket.push_back(&monitor);
    }
  };
  // Wildcard subscriptions first: a monitor watching every subject of a
  // category must not also sit in that category's subject buckets, or one
  // record would reach it twice.
  for (const auto& sub : subs) {
    if (!sub.subject.empty()) continue;
    enter(index_[trace_.intern_category(sub.category)].wildcard);
  }
  for (const auto& sub : subs) {
    if (sub.subject.empty()) continue;
    CategoryBucket& bucket = index_[trace_.intern_category(sub.category)];
    if (std::find(bucket.wildcard.begin(), bucket.wildcard.end(), &monitor) !=
        bucket.wildcard.end()) {
      continue;  // already sees every subject of this category
    }
    enter(bucket.by_subject[trace_.intern_subject(sub.subject)]);
  }
}

ArrivalMonitor& MonitorRegistry::add_arrival(ArrivalSpec spec) {
  auto m = std::make_unique<ArrivalMonitor>(std::move(spec));
  ArrivalMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

DeadlineMonitor& MonitorRegistry::add_deadline(DeadlineSpec spec) {
  auto m = std::make_unique<DeadlineMonitor>(std::move(spec));
  DeadlineMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

LatencyMonitor& MonitorRegistry::add_latency(LatencySpec spec) {
  auto m = std::make_unique<LatencyMonitor>(std::move(spec));
  LatencyMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

RangeMonitor& MonitorRegistry::add_range(RangeSpec spec) {
  auto m = std::make_unique<RangeMonitor>(std::move(spec));
  RangeMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

AutomatonMonitor& MonitorRegistry::add_automaton(AutomatonSpec spec) {
  auto m = std::make_unique<AutomatonMonitor>(std::move(spec));
  AutomatonMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

void MonitorRegistry::add(std::unique_ptr<Monitor> monitor) {
  attach(*monitor);
  monitors_.push_back(std::move(monitor));
}

std::vector<const LatencyMonitor*> MonitorRegistry::latency_monitors() const {
  std::vector<const LatencyMonitor*> out;
  for (const auto& m : monitors_) {
    if (const auto* lat = dynamic_cast<const LatencyMonitor*>(m.get())) {
      out.push_back(lat);
    }
  }
  return out;
}

void MonitorRegistry::report_to(bsw::Dem& dem,
                                std::int32_t debounce_threshold,
                                std::uint32_t aging_cycles) {
  dem_ = &dem;
  dem_threshold_ = debounce_threshold;
  dem_aging_ = aging_cycles;
  if (!dem_subscribed_) {
    dem_subscribed_ = true;
    dem.on_aged_out([this](const bsw::Dtc& dtc) { handle_aged_out(dtc); });
  }
}

void MonitorRegistry::escalate_to(bsw::ModeMachine& modes,
                                  std::string degraded_mode,
                                  std::size_t threshold) {
  modes_ = &modes;
  degraded_mode_ = std::move(degraded_mode);
  escalation_threshold_ = threshold == 0 ? 1 : threshold;
}

void MonitorRegistry::quarantine_with(QuarantineHook hook) {
  quarantine_ = std::move(hook);
}

void MonitorRegistry::release_with(ReleaseHook hook) {
  release_ = std::move(hook);
}

void MonitorRegistry::recover_to(std::string recovery_mode) {
  recovery_mode_ = std::move(recovery_mode);
}

void MonitorRegistry::set_warmup(std::uint64_t min_observations) {
  warmup_ = min_observations;
}

void MonitorRegistry::on_violation(ViolationCallback cb) {
  callbacks_.push_back(std::move(cb));
}

void MonitorRegistry::report_external(const Violation& violation) {
  handle(violation);
}

void MonitorRegistry::sync_observations(const std::string& contract,
                                        const ContractCtx& ctx) {
  std::uint64_t total = 0;
  double confidence = 1.0;
  for (const Monitor* m : ctx.monitors) {
    total += m->observations();
    if (m->confidence() < confidence) confidence = m->confidence();
  }
  health_.note_observations(contract, total, confidence);
}

bool MonitorRegistry::judged_over_budget(
    const HealthReport::ContractStats& stats) const {
  return stats.window_observations() >= warmup_ && stats.over_budget();
}

void MonitorRegistry::report_budget_to_dem(const std::string& contract,
                                           bool over) {
  const std::string event = std::string(kDemPrefix) + contract;
  if (dem_events_.insert(event).second) {
    try {
      dem_->add_event(
          {event, dem_threshold_, dem_aging_, contract_dtc_code(contract)});
    } catch (const std::invalid_argument&) {
      // Already registered by the user (e.g. with a custom DTC code).
    }
  }
  dem_->report(event,
               over ? bsw::EventStatus::kFailed : bsw::EventStatus::kPassed);
}

void MonitorRegistry::handle(const Violation& v) {
  health_.record(v);
  ContractCtx& ctx = contracts_[v.contract];
  ctx.last_violation = v;
  ctx.has_violation = true;
  sync_observations(v.contract, ctx);

  // The budget verdict decides everything downstream: a violation within a
  // sub-1.0-confidence spec's tolerated rate is recorded for diagnosis but
  // neither maintained in the DEM nor escalated.
  const HealthReport::ContractStats* stats = health_.stats(v.contract);
  const bool over = stats != nullptr && judged_over_budget(*stats);

  if (dem_ != nullptr && over) report_budget_to_dem(v.contract, true);

  for (const auto& cb : callbacks_) cb(v);

  // Escalation must be armed explicitly (escalate_to): the quarantine hook
  // alone — pre-wired by vfb::System — must not sanction anyone unless the
  // integrator opted into a degraded mode.
  if (!escalated_ && modes_ != nullptr && over && stats != nullptr &&
      stats->window_violating() >= escalation_threshold_) {
    escalate(v);
  }
}

void MonitorRegistry::escalate(const Violation& cause) {
  escalated_ = true;
  pre_escalation_mode_ = modes_->current();
  modes_->request(degraded_mode_);
  if (quarantine_) {
    const std::string instance = instance_of(cause.subject);
    contracts_[cause.contract].quarantined_instance = instance;
    quarantine_(instance, cause);
  }
}

void MonitorRegistry::flush() {
  for (auto& [contract, ctx] : contracts_) {
    sync_observations(contract, ctx);
  }
  for (const auto& [contract, stats] : health_.contract_stats()) {
    const bool judged = stats.window_observations() >= warmup_;
    const bool over = judged && stats.over_budget();
    // Only contracts the DEM already knows get passed-reports: a contract
    // that never went over budget has no event to heal, and inventing one
    // would pollute the event table.
    if (dem_ != nullptr &&
        (over || dem_events_.count(std::string(kDemPrefix) + contract) > 0)) {
      report_budget_to_dem(contract, over);
    }
    if (!escalated_ && modes_ != nullptr && over &&
        stats.window_violating() >= escalation_threshold_) {
      auto it = contracts_.find(contract);
      if (it != contracts_.end() && it->second.has_violation) {
        escalate(it->second.last_violation);
      }
    }
  }
  health_.close_windows();
}

void MonitorRegistry::handle_aged_out(const bsw::Dtc& dtc) {
  if (dtc.event.rfind(kDemPrefix, 0) != 0) return;
  if (dem_events_.find(dtc.event) == dem_events_.end()) return;
  const std::string contract = dtc.event.substr(kDemPrefix.size());

  auto it = contracts_.find(contract);
  if (it != contracts_.end()) {
    if (!it->second.quarantined_instance.empty()) {
      if (release_) release_(it->second.quarantined_instance);
      it->second.quarantined_instance.clear();
    }
    // The sanction gap must not be judged: re-anchor incremental state so
    // the first post-release observation starts a fresh interval/chain.
    for (Monitor* m : it->second.monitors) m->resync();
  }
  health_.close_window(contract);

  // Recovery: once no contract DTC remains stored, the degraded episode is
  // over — return to the declared recovery mode (or the mode that was
  // current when escalation fired) and re-arm.
  if (!escalated_ || modes_ == nullptr) return;
  for (const auto& event : dem_events_) {
    if (dem_->dtc(event).has_value()) return;  // another contract still sick
  }
  escalated_ = false;
  ++recoveries_;
  const std::string& target =
      recovery_mode_.empty() ? pre_escalation_mode_ : recovery_mode_;
  if (!target.empty()) modes_->request(target);
}

void MonitorRegistry::reset() {
  health_.clear();
  escalated_ = false;
  pre_escalation_mode_.clear();
  for (auto& [contract, ctx] : contracts_) {
    ctx.quarantined_instance.clear();
    ctx.has_violation = false;
  }
}

}  // namespace orte::rv
