#include "rv/registry.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace orte::rv {

std::uint32_t contract_dtc_code(std::string_view contract) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : contract) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>((h ^ (h >> 24)) & 0xFFFFFFu);
}

MonitorRegistry::MonitorRegistry(sim::Trace& trace) : trace_(trace) {
  trace_.subscribe([this](const sim::TraceRecord& rec) {
    assert(trace_.category_name(rec.category_id) == rec.category &&
           trace_.subject_name(rec.subject_id) == rec.subject);
    auto it = index_.find(rec.category_id);
    if (it == index_.end()) return;  // category nobody watches
    ++records_routed_;
    const CategoryBucket& bucket = it->second;
    bool delivered = false;
    auto sit = bucket.by_subject.find(rec.subject_id);
    if (sit != bucket.by_subject.end()) {
      delivered = true;
      for (Monitor* m : sit->second) m->observe(rec);
    }
    if (!bucket.wildcard.empty()) {
      delivered = true;
      for (Monitor* m : bucket.wildcard) m->observe(rec);
    }
    records_delivered_ += delivered ? 1 : 0;
  });
}

void MonitorRegistry::attach(Monitor& monitor) {
  monitor.bind([this](const Violation& v) { handle(v); });
  monitor.prepare(trace_);
  const auto subs = monitor.subscriptions();
  const auto enter = [&monitor](std::vector<Monitor*>& bucket) {
    if (std::find(bucket.begin(), bucket.end(), &monitor) == bucket.end()) {
      bucket.push_back(&monitor);
    }
  };
  // Wildcard subscriptions first: a monitor watching every subject of a
  // category must not also sit in that category's subject buckets, or one
  // record would reach it twice.
  for (const auto& sub : subs) {
    if (!sub.subject.empty()) continue;
    enter(index_[trace_.intern_category(sub.category)].wildcard);
  }
  for (const auto& sub : subs) {
    if (sub.subject.empty()) continue;
    CategoryBucket& bucket = index_[trace_.intern_category(sub.category)];
    if (std::find(bucket.wildcard.begin(), bucket.wildcard.end(), &monitor) !=
        bucket.wildcard.end()) {
      continue;  // already sees every subject of this category
    }
    enter(bucket.by_subject[trace_.intern_subject(sub.subject)]);
  }
}

ArrivalMonitor& MonitorRegistry::add_arrival(ArrivalSpec spec) {
  auto m = std::make_unique<ArrivalMonitor>(std::move(spec));
  ArrivalMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

DeadlineMonitor& MonitorRegistry::add_deadline(DeadlineSpec spec) {
  auto m = std::make_unique<DeadlineMonitor>(std::move(spec));
  DeadlineMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

LatencyMonitor& MonitorRegistry::add_latency(LatencySpec spec) {
  auto m = std::make_unique<LatencyMonitor>(std::move(spec));
  LatencyMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

AutomatonMonitor& MonitorRegistry::add_automaton(AutomatonSpec spec) {
  auto m = std::make_unique<AutomatonMonitor>(std::move(spec));
  AutomatonMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

void MonitorRegistry::add(std::unique_ptr<Monitor> monitor) {
  attach(*monitor);
  monitors_.push_back(std::move(monitor));
}

void MonitorRegistry::report_to(bsw::Dem& dem,
                                std::int32_t debounce_threshold,
                                std::uint32_t aging_cycles) {
  dem_ = &dem;
  dem_threshold_ = debounce_threshold;
  dem_aging_ = aging_cycles;
}

void MonitorRegistry::escalate_to(bsw::ModeMachine& modes,
                                  std::string degraded_mode,
                                  std::size_t threshold) {
  modes_ = &modes;
  degraded_mode_ = std::move(degraded_mode);
  escalation_threshold_ = threshold == 0 ? 1 : threshold;
}

void MonitorRegistry::quarantine_with(QuarantineHook hook) {
  quarantine_ = std::move(hook);
}

void MonitorRegistry::on_violation(ViolationCallback cb) {
  callbacks_.push_back(std::move(cb));
}

void MonitorRegistry::handle(const Violation& v) {
  health_.record(v);

  if (dem_ != nullptr) {
    const std::string event = "rv." + v.contract;
    if (dem_events_.insert(event).second) {
      try {
        dem_->add_event({event, dem_threshold_, dem_aging_,
                         contract_dtc_code(v.contract)});
      } catch (const std::invalid_argument&) {
        // Already registered by the user (e.g. with a custom DTC code).
      }
    }
    dem_->report(event, bsw::EventStatus::kFailed);
  }

  for (const auto& cb : callbacks_) cb(v);

  // Escalation must be armed explicitly (escalate_to): the quarantine hook
  // alone — pre-wired by vfb::System — must not sanction anyone unless the
  // integrator opted into a degraded mode.
  if (!escalated_ && modes_ != nullptr &&
      health_.total() >= escalation_threshold_) {
    escalated_ = true;
    if (modes_ != nullptr) modes_->request(degraded_mode_);
    if (quarantine_) {
      // The offending instance is the first path segment of the subject
      // ("instance.port.element" flow keys, "tk|instance|..." task names,
      // or a bare instance name).
      std::string instance = v.subject;
      if (instance.rfind("tk|", 0) == 0) {
        instance = instance.substr(3);
        const auto bar = instance.find('|');
        if (bar != std::string::npos) instance.resize(bar);
      } else {
        const auto dot = instance.find('.');
        if (dot != std::string::npos) instance.resize(dot);
      }
      quarantine_(instance, v);
    }
  }
}

void MonitorRegistry::reset() {
  health_.clear();
  escalated_ = false;
}

}  // namespace orte::rv
