#include "rv/registry.hpp"

#include <stdexcept>
#include <utility>

namespace orte::rv {

std::uint32_t contract_dtc_code(std::string_view contract) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : contract) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>((h ^ (h >> 24)) & 0xFFFFFFu);
}

MonitorRegistry::MonitorRegistry(sim::Trace& trace) : trace_(trace) {
  trace_.subscribe([this](const sim::TraceRecord& rec) {
    auto it = by_category_.find(rec.category);
    if (it == by_category_.end()) return;
    ++records_routed_;
    for (Monitor* m : it->second) m->observe(rec);
  });
}

void MonitorRegistry::attach(Monitor& monitor) {
  monitor.bind([this](const Violation& v) { handle(v); });
  for (const auto& cat : monitor.categories()) {
    by_category_[cat].push_back(&monitor);
  }
}

ArrivalMonitor& MonitorRegistry::add_arrival(ArrivalSpec spec) {
  auto m = std::make_unique<ArrivalMonitor>(std::move(spec));
  ArrivalMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

DeadlineMonitor& MonitorRegistry::add_deadline(DeadlineSpec spec) {
  auto m = std::make_unique<DeadlineMonitor>(std::move(spec));
  DeadlineMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

LatencyMonitor& MonitorRegistry::add_latency(LatencySpec spec) {
  auto m = std::make_unique<LatencyMonitor>(std::move(spec));
  LatencyMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

AutomatonMonitor& MonitorRegistry::add_automaton(AutomatonSpec spec) {
  auto m = std::make_unique<AutomatonMonitor>(std::move(spec));
  AutomatonMonitor& ref = *m;
  add(std::move(m));
  return ref;
}

void MonitorRegistry::add(std::unique_ptr<Monitor> monitor) {
  attach(*monitor);
  monitors_.push_back(std::move(monitor));
}

void MonitorRegistry::report_to(bsw::Dem& dem,
                                std::int32_t debounce_threshold,
                                std::uint32_t aging_cycles) {
  dem_ = &dem;
  dem_threshold_ = debounce_threshold;
  dem_aging_ = aging_cycles;
}

void MonitorRegistry::escalate_to(bsw::ModeMachine& modes,
                                  std::string degraded_mode,
                                  std::size_t threshold) {
  modes_ = &modes;
  degraded_mode_ = std::move(degraded_mode);
  escalation_threshold_ = threshold == 0 ? 1 : threshold;
}

void MonitorRegistry::quarantine_with(QuarantineHook hook) {
  quarantine_ = std::move(hook);
}

void MonitorRegistry::on_violation(ViolationCallback cb) {
  callbacks_.push_back(std::move(cb));
}

void MonitorRegistry::handle(const Violation& v) {
  health_.record(v);

  if (dem_ != nullptr) {
    const std::string event = "rv." + v.contract;
    if (dem_events_.insert(event).second) {
      try {
        dem_->add_event({event, dem_threshold_, dem_aging_,
                         contract_dtc_code(v.contract)});
      } catch (const std::invalid_argument&) {
        // Already registered by the user (e.g. with a custom DTC code).
      }
    }
    dem_->report(event, bsw::EventStatus::kFailed);
  }

  for (const auto& cb : callbacks_) cb(v);

  // Escalation must be armed explicitly (escalate_to): the quarantine hook
  // alone — pre-wired by vfb::System — must not sanction anyone unless the
  // integrator opted into a degraded mode.
  if (!escalated_ && modes_ != nullptr &&
      health_.total() >= escalation_threshold_) {
    escalated_ = true;
    if (modes_ != nullptr) modes_->request(degraded_mode_);
    if (quarantine_) {
      // The offending instance is the first path segment of the subject
      // ("instance.port.element" flow keys, "tk|instance|..." task names,
      // or a bare instance name).
      std::string instance = v.subject;
      if (instance.rfind("tk|", 0) == 0) {
        instance = instance.substr(3);
        const auto bar = instance.find('|');
        if (bar != std::string::npos) instance.resize(bar);
      } else {
        const auto dot = instance.find('.');
        if (dot != std::string::npos) instance.resize(dot);
      }
      quarantine_(instance, v);
    }
  }
}

void MonitorRegistry::reset() {
  health_.clear();
  escalated_ = false;
}

}  // namespace orte::rv
