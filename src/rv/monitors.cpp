#include "rv/monitors.hpp"

#include <cstdlib>
#include <utility>

namespace orte::rv {

void Monitor::raise(Violation v) {
  ++raised_;
  if (sink_) sink_(v);
}

// --- ArrivalMonitor -----------------------------------------------------------

ArrivalMonitor::ArrivalMonitor(ArrivalSpec spec)
    : Monitor(spec.contract, spec.confidence), spec_(std::move(spec)) {}

std::vector<Monitor::Subscription> ArrivalMonitor::subscriptions() const {
  std::vector<Subscription> subs{{spec_.category, spec_.subject}};
  if (spec_.observe_quarantined) {
    // Suppressed writes of a quarantined component still document its
    // update rate; judging them keeps the rehabilitation loop honest.
    subs.push_back({"rte.quarantine_drop", spec_.subject});
  }
  return subs;
}

void ArrivalMonitor::prepare(sim::Trace& trace) {
  subject_id_ = trace.intern_subject(spec_.subject);
}

void ArrivalMonitor::resync() {
  last_ = -1;
  streak_ = 0;
}

void ArrivalMonitor::observe(const sim::TraceEvent& rec) {
  if (rec.subject_id != subject_id_) return;
  ++arrivals_;
  const sim::Time prev = last_;
  last_ = rec.when;
  if (prev < 0 || spec_.period <= 0) return;
  note_observation();
  const sim::Duration interval = rec.when - prev;
  const sim::Duration deviation = std::llabs(interval - spec_.period);
  Violation v;
  v.contract = contract_;
  v.subject = spec_.subject;
  v.when = rec.when;
  v.confidence = spec_.confidence;
  if (spec_.jitter > 0 && deviation > spec_.jitter) {
    v.kind = "jitter";
    v.observed = deviation;
    v.bound = spec_.jitter;
    v.detail = "inter-arrival " + std::to_string(interval) + " ns vs period " +
               std::to_string(spec_.period) + " ns";
  } else if (spec_.jitter <= 0 && interval > spec_.period) {
    v.kind = "period";
    v.observed = interval;
    v.bound = spec_.period;
  } else {
    streak_ = 0;
    return;
  }
  v.streak = ++streak_;
  raise(std::move(v));
}

// --- DeadlineMonitor ----------------------------------------------------------

DeadlineMonitor::DeadlineMonitor(DeadlineSpec spec)
    : Monitor(spec.contract, spec.confidence), spec_(std::move(spec)) {}

std::vector<Monitor::Subscription> DeadlineMonitor::subscriptions() const {
  return {{"task.deadline_miss", spec_.task}, {"task.complete", spec_.task}};
}

void DeadlineMonitor::prepare(sim::Trace& trace) {
  task_id_ = trace.intern_subject(spec_.task);
  miss_category_id_ = trace.intern_category("task.deadline_miss");
}

void DeadlineMonitor::resync() { miss_streak_ = 0; }

void DeadlineMonitor::observe(const sim::TraceEvent& rec) {
  if (rec.subject_id != task_id_) return;
  if (rec.category_id == miss_category_id_) {
    note_observation();
    Violation v;
    v.contract = contract_;
    v.subject = spec_.task;
    v.kind = "deadline";
    v.bound = spec_.deadline;
    v.observed = spec_.deadline;  // the job is still running past the bound
    v.when = rec.when;
    v.streak = ++miss_streak_;
    v.confidence = spec_.confidence;
    raise(std::move(v));
    return;
  }
  // task.complete: record value carries the response time in ns.
  ++completions_;
  note_observation();
  if (rec.value <= spec_.deadline) miss_streak_ = 0;
  if (spec_.response_bound > 0 && rec.value > spec_.response_bound) {
    Violation v;
    v.contract = contract_;
    v.subject = spec_.task;
    v.kind = "response";
    v.observed = rec.value;
    v.bound = spec_.response_bound;
    v.when = rec.when;
    v.confidence = spec_.confidence;
    raise(std::move(v));
  }
}

// --- LatencyMonitor -----------------------------------------------------------

LatencyMonitor::LatencyMonitor(LatencySpec spec)
    : Monitor(spec.contract, spec.confidence), spec_(std::move(spec)) {}

std::vector<Monitor::Subscription> LatencyMonitor::subscriptions() const {
  return {{spec_.source_category, spec_.source_subject},
          {spec_.sink_category, spec_.sink_subject}};
}

void LatencyMonitor::prepare(sim::Trace& trace) {
  source_category_id_ = trace.intern_category(spec_.source_category);
  source_subject_id_ = trace.intern_subject(spec_.source_subject);
  sink_category_id_ = trace.intern_category(spec_.sink_category);
  sink_subject_id_ = trace.intern_subject(spec_.sink_subject);
}

void LatencyMonitor::resync() {
  in_flight_.clear();
  streak_ = 0;
}

void LatencyMonitor::observe(const sim::TraceEvent& rec) {
  if (rec.category_id == source_category_id_ &&
      rec.subject_id == source_subject_id_) {
    in_flight_.push_back(rec.when);
    if (in_flight_.size() > spec_.max_in_flight) {
      // The sink fell behind by a full window: the oldest cause will never
      // be matched — report the age it reached before dropping it.
      note_observation();
      Violation v;
      v.contract = contract_;
      v.subject = spec_.source_subject + " -> " + spec_.sink_subject;
      v.kind = "latency";
      v.observed = rec.when - in_flight_.front();
      v.bound = spec_.bound;
      v.when = rec.when;
      v.streak = ++streak_;
      v.confidence = spec_.confidence;
      v.detail = "sink starved: dropped unmatched cause";
      in_flight_.pop_front();
      raise(std::move(v));
    }
    return;
  }
  if (rec.category_id != sink_category_id_ ||
      rec.subject_id != sink_subject_id_) {
    return;
  }
  if (!spec_.sink_detail.empty() && rec.detail != spec_.sink_detail) return;
  if (in_flight_.empty()) return;  // sink activity with no pending cause
  const sim::Time cause = in_flight_.front();
  in_flight_.pop_front();
  const sim::Duration latency = rec.when - cause;
  ++samples_;
  note_observation();
  if (latency > worst_) worst_ = latency;
  if (spec_.bound > 0 && latency > spec_.bound) {
    Violation v;
    v.contract = contract_;
    v.subject = spec_.source_subject + " -> " + spec_.sink_subject;
    v.kind = "latency";
    v.observed = latency;
    v.bound = spec_.bound;
    v.when = rec.when;
    v.streak = ++streak_;
    v.confidence = spec_.confidence;
    raise(std::move(v));
  } else {
    streak_ = 0;
  }
}

// --- RangeMonitor -------------------------------------------------------------

RangeMonitor::RangeMonitor(RangeSpec spec)
    : Monitor(spec.contract, spec.confidence), spec_(std::move(spec)) {
  if (spec_.report_subject.empty()) spec_.report_subject = spec_.subject;
}

std::vector<Monitor::Subscription> RangeMonitor::subscriptions() const {
  return {{spec_.category, spec_.subject}};
}

void RangeMonitor::prepare(sim::Trace& trace) {
  subject_id_ = trace.intern_subject(spec_.subject);
}

void RangeMonitor::resync() { streak_ = 0; }

void RangeMonitor::observe(const sim::TraceEvent& rec) {
  if (rec.subject_id != subject_id_) return;
  ++checked_;
  note_observation();
  if (spec_.range.contains(rec.value)) {
    streak_ = 0;
    return;
  }
  Violation v;
  v.contract = contract_;
  v.subject = spec_.report_subject;
  v.kind = "range";
  v.observed = rec.value;
  // A violation carries one scalar bound; report the breached side.
  v.bound = rec.value < spec_.range.lo ? spec_.range.lo : spec_.range.hi;
  v.when = rec.when;
  v.streak = ++streak_;
  v.confidence = spec_.confidence;
  v.detail = "value " + std::to_string(rec.value) + " outside [" +
             std::to_string(spec_.range.lo) + ", " +
             std::to_string(spec_.range.hi) + "] at " + spec_.subject;
  raise(std::move(v));
}

// --- AutomatonMonitor ---------------------------------------------------------

AutomatonMonitor::AutomatonMonitor(AutomatonSpec spec)
    : Monitor(spec.contract, spec.confidence),
      spec_(std::move(spec)),
      stepper_(spec_.automaton) {}

std::vector<Monitor::Subscription> AutomatonMonitor::subscriptions() const {
  std::vector<Subscription> subs;
  for (const auto& rule : spec_.labels) {
    subs.push_back({rule.category, rule.subject});
  }
  return subs;
}

void AutomatonMonitor::prepare(sim::Trace& trace) {
  trace_ = &trace;
  rule_ids_.clear();
  for (const auto& rule : spec_.labels) {
    RuleIds ids;
    ids.category = trace.intern_category(rule.category);
    ids.any_subject = rule.subject.empty();
    if (!ids.any_subject) ids.subject = trace.intern_subject(rule.subject);
    rule_ids_.push_back(ids);
  }
}

void AutomatonMonitor::observe(const sim::TraceEvent& rec) {
  const AutomatonSpec::LabelRule* rule = nullptr;
  for (std::size_t i = 0; i < rule_ids_.size(); ++i) {
    const RuleIds& ids = rule_ids_[i];
    if (ids.category == rec.category_id &&
        (ids.any_subject || ids.subject == rec.subject_id)) {
      rule = &spec_.labels[i];
      break;
    }
  }
  if (rule == nullptr) return;
  ++events_;
  note_observation();
  if (anchor_pending_) {
    last_event_ = rec.when;
    anchor_pending_ = false;
  }
  const sim::Duration tick = spec_.tick > 0 ? spec_.tick : 1;
  const std::int64_t delay = (rec.when - last_event_) / tick;
  last_event_ = rec.when;
  const int before = stepper_.location();
  if (stepper_.step(delay, rule->label)) {
    streak_ = 0;
    return;
  }
  Violation v;
  v.contract = contract_;
  v.subject = trace_ != nullptr
                  ? std::string(trace_->subject_name(rec.subject_id))
                  : std::string();
  v.kind = "automaton";
  v.observed = delay;
  v.bound = 0;
  v.when = rec.when;
  v.streak = ++streak_;
  v.confidence = spec_.confidence;
  v.detail = stepper_.in_error()
                 ? "entered error location '" +
                       spec_.automaton.location_name(stepper_.location()) + "'"
                 : "event '" + rule->label + "' stuck in location '" +
                       spec_.automaton.location_name(before) + "'";
  // Self-heal: resume checking from the initial state so one glitch does
  // not blind the observer for the rest of the run.
  stepper_.reset();
  raise(std::move(v));
}

void AutomatonMonitor::resync() {
  stepper_.reset();
  streak_ = 0;
  anchor_pending_ = true;
}

}  // namespace orte::rv
