#include "rv/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace orte::rv {

namespace {

/// Minimal JSON string escape (quotes, backslash, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Nanoseconds -> trace_event microseconds with 3 decimals, deterministic.
std::string us(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000)
                                                     : ns % 1000));
  return buf;
}

}  // namespace

std::string to_chrome_trace(const std::vector<sim::TraceRecord>& records) {
  // Stable tid per subject, in order of first appearance.
  std::map<std::string, int> tids;
  for (const auto& r : records) {
    tids.try_emplace(r.subject, static_cast<int>(tids.size()) + 1);
  }

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const auto& [subject, tid] : tids) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(subject) << "\"}}";
  }
  for (const auto& r : records) {
    const int tid = tids.at(r.subject);
    sep();
    if (r.category == "task.complete" && r.value > 0 &&
        r.value <= r.when) {
      // Response span: activation (when - response) .. completion.
      os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"ts\":"
         << us(r.when - r.value) << ",\"dur\":" << us(r.value)
         << ",\"name\":\"" << json_escape(r.subject)
         << "\",\"cat\":\"task\",\"args\":{\"response_ns\":" << r.value
         << "}}";
      continue;
    }
    os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << tid
       << ",\"ts\":" << us(r.when) << ",\"name\":\""
       << json_escape(r.category) << "\",\"cat\":\""
       << json_escape(r.category) << "\",\"args\":{\"value\":" << r.value;
    if (!r.detail.empty()) {
      os << ",\"detail\":\"" << json_escape(r.detail) << "\"";
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

std::string to_csv_histograms(const std::vector<sim::TraceRecord>& records) {
  std::map<std::pair<std::string, std::string>, std::vector<std::int64_t>>
      values;
  for (const auto& r : records) {
    values[{r.category, r.subject}].push_back(r.value);
  }
  std::ostringstream os;
  os << "category,subject,count,min,mean,max,p50,p99\n";
  for (auto& [key, vs] : values) {
    std::sort(vs.begin(), vs.end());
    std::int64_t sum = 0;
    for (const auto v : vs) sum += v;
    const auto pct = [&](double p) {
      const auto idx = static_cast<std::size_t>(
          p / 100.0 * static_cast<double>(vs.size() - 1) + 0.5);
      return vs[std::min(idx, vs.size() - 1)];
    };
    os << key.first << "," << key.second << "," << vs.size() << ","
       << vs.front() << ","
       << static_cast<double>(sum) / static_cast<double>(vs.size()) << ","
       << vs.back() << "," << pct(50) << "," << pct(99) << "\n";
  }
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << content;
}

}  // namespace orte::rv
