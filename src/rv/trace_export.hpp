// Trace exporters: turn a retained sim::Trace into artifacts external tools
// understand.
//  * Chrome trace_event JSON (load in chrome://tracing or Perfetto): task
//    executions become duration events (one lane per trace subject), every
//    other record an instant event — any run opens in a timeline viewer.
//  * CSV histograms: per (category, subject) count / min / mean / max /
//    p50 / p99 over the record values, for spreadsheet-side analysis.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace orte::rv {

/// Chrome trace_event JSON ("JSON object format": {"traceEvents": [...]}).
/// Timestamps are microseconds (fractional, from the ns simulation clock).
/// Task response spans ("task.complete" records, whose value is the response
/// time) become complete events (ph "X") covering activation..completion —
/// preemption-safe, unlike B/E nesting; everything else becomes an instant
/// event (ph "i"). Deterministic: output depends only on the records.
[[nodiscard]] std::string to_chrome_trace(
    const std::vector<sim::TraceRecord>& records);

/// CSV with header "category,subject,count,min,mean,max,p50,p99" (values in
/// the records' native unit, one row per (category, subject), sorted).
[[nodiscard]] std::string to_csv_histograms(
    const std::vector<sim::TraceRecord>& records);

/// Convenience: write either artifact to a file. Throws std::runtime_error
/// when the file cannot be opened.
void write_file(const std::string& path, const std::string& content);

}  // namespace orte::rv
