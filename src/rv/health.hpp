// Runtime-verification verdicts (§3 executed at run time): a Violation is
// the first-class record a monitor raises when an observed execution leaves
// the envelope its contract promised; the HealthReport aggregates them into
// a queryable per-run health state (the paper's "consistent and non
// ambiguous error handling" applied to contract conformance).
//
// Health is *rate-based*: every contract spec carries a confidence level
// ("reflecting design experience on the ability to meet the specification",
// §3), so a violation is not binary evidence of a broken component — a
// 99.9 %-confidence spec expects up to 1 non-conforming observation per
// 1000. The report therefore tracks, per contract, the total number of
// judged observations alongside the violating ones and derives a *violation
// budget*: tolerated = ⌊(1 − confidence) · observations⌋. A contract is
// over budget only when its violating count exceeds that allowance —
// following the rate-based checking of Nandi et al.'s stochastic contracts.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace orte::rv {

/// One observed contract violation. `streak` counts consecutive violating
/// observations by the same monitor (confidence counter: a streak of 1 may
/// be a transient; a long streak is a persistent fault worth escalating).
struct Violation {
  std::string contract;  ///< Contract id (or implicit rule id, "rm.<task>").
  std::string subject;   ///< Subject path: flow key, task or instance name.
  std::string kind;      ///< "period" | "jitter" | "deadline" | "response" |
                         ///< "latency" | "range" | "automaton" | "alive".
  std::int64_t observed = 0;  ///< Measured value (ns for timing kinds).
  std::int64_t bound = 0;     ///< Contracted bound it exceeded.
  sim::Time when = 0;
  std::uint64_t streak = 1;   ///< Consecutive violations from this monitor.
  double confidence = 1.0;    ///< Confidence attached to the violated spec.
  std::string detail;
};

/// Aggregated, queryable violation log for one run.
///
/// Two layers of bookkeeping:
///  * an exact set of counters (total, per-kind, per-contract, per-contract
///    rate stats) that never lose precision, and
///  * a bounded log of the most recent `Violation` records for diagnosis —
///    soak runs cannot grow it without limit (see set_retention()).
class HealthReport {
 public:
  /// Default bound on stored Violation records (counters stay exact).
  static constexpr std::size_t kDefaultRetention = 4096;

  /// Per-contract conformance-rate statistics. `violating`/`observations`
  /// are cumulative and exact; the *window* view covers everything since
  /// the last close_window() (the registry closes windows at flush()), so
  /// budget verdicts judge the current evaluation period, not all history —
  /// a contract that violated long ago can prove itself healthy again.
  struct ContractStats {
    std::uint64_t violating = 0;     ///< Judged observations that violated.
    std::uint64_t observations = 0;  ///< All judged observations (fed by the
                                     ///< registry from Monitor::observations).
    double confidence = 1.0;         ///< Strictest spec confidence seen.

    [[nodiscard]] std::uint64_t window_violating() const {
      return violating - window_base_violating;
    }
    [[nodiscard]] std::uint64_t window_observations() const {
      return observations > window_base_observations
                 ? observations - window_base_observations
                 : 0;
    }
    /// Violation budget of the current window:
    /// ⌊(1 − confidence) · window_observations⌋ (an epsilon absorbs the
    /// binary representation of confidences like 0.999).
    [[nodiscard]] std::uint64_t tolerated() const;
    /// Budget exceeded: strictly more window violations than tolerated, so
    /// violations == tolerated is still healthy (the exact-budget boundary).
    [[nodiscard]] bool over_budget() const {
      return window_violating() > tolerated();
    }

    std::uint64_t window_base_violating = 0;
    std::uint64_t window_base_observations = 0;
  };

  void record(const Violation& v);

  /// Feed the cumulative judged-observation count for `contract` (the
  /// registry sums Monitor::observations() over the contract's monitors)
  /// together with the strictest confidence any of those monitors carries.
  void note_observations(std::string_view contract, std::uint64_t total,
                         double confidence);

  /// Close `contract`'s evaluation window: subsequent budget verdicts judge
  /// only observations recorded from now on.
  void close_window(std::string_view contract);
  /// Close every contract's evaluation window.
  void close_windows();

  /// Most recent violations, oldest first (bounded by set_retention()).
  [[nodiscard]] const std::deque<Violation>& violations() const {
    return violations_;
  }
  /// Exact number of violations ever recorded (survives log eviction).
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] bool healthy() const { return total_ == 0; }
  [[nodiscard]] std::size_t count_kind(std::string_view kind) const;
  [[nodiscard]] std::size_t count_contract(std::string_view contract) const;
  /// Rate statistics of `contract`; nullptr when it never appeared.
  [[nodiscard]] const ContractStats* stats(std::string_view contract) const;
  [[nodiscard]] const std::map<std::string, ContractStats, std::less<>>&
  contract_stats() const {
    return contract_stats_;
  }
  /// Still-retained violations of `contract`, in raise order.
  [[nodiscard]] std::vector<Violation> for_contract(
      std::string_view contract) const;
  /// Human-readable one-line-per-violation summary (diagnosis, examples).
  [[nodiscard]] std::string render() const;

  /// Bound the stored Violation log (0 = unbounded). Evicts oldest records
  /// immediately if over the new cap; all counters keep their exact values.
  void set_retention(std::size_t cap);
  [[nodiscard]] std::size_t retention() const { return retention_; }

  void clear();

 private:
  std::deque<Violation> violations_;
  std::size_t retention_ = kDefaultRetention;
  std::size_t total_ = 0;
  std::map<std::string, std::size_t, std::less<>> by_kind_;
  std::map<std::string, std::size_t, std::less<>> by_contract_;
  std::map<std::string, ContractStats, std::less<>> contract_stats_;
};

}  // namespace orte::rv
