// Runtime-verification verdicts (§3 executed at run time): a Violation is
// the first-class record a monitor raises when an observed execution leaves
// the envelope its contract promised; the HealthReport aggregates them into
// a queryable per-run health state (the paper's "consistent and non
// ambiguous error handling" applied to contract conformance).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace orte::rv {

/// One observed contract violation. `streak` counts consecutive violating
/// observations by the same monitor (confidence counter: a streak of 1 may
/// be a transient; a long streak is a persistent fault worth escalating).
struct Violation {
  std::string contract;  ///< Contract id (or implicit rule id, "rm.<task>").
  std::string subject;   ///< Subject path: flow key, task or instance name.
  std::string kind;      ///< "period" | "jitter" | "deadline" | "response" |
                         ///< "latency" | "automaton".
  std::int64_t observed = 0;  ///< Measured value (ns for timing kinds).
  std::int64_t bound = 0;     ///< Contracted bound it exceeded.
  sim::Time when = 0;
  std::uint64_t streak = 1;   ///< Consecutive violations from this monitor.
  double confidence = 1.0;    ///< Confidence attached to the violated spec.
  std::string detail;
};

/// Aggregated, queryable violation log for one run.
class HealthReport {
 public:
  void record(const Violation& v);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t total() const { return violations_.size(); }
  [[nodiscard]] bool healthy() const { return violations_.empty(); }
  [[nodiscard]] std::size_t count_kind(std::string_view kind) const;
  [[nodiscard]] std::size_t count_contract(std::string_view contract) const;
  /// Violations of `contract`, in raise order.
  [[nodiscard]] std::vector<Violation> for_contract(
      std::string_view contract) const;
  /// Human-readable one-line-per-violation summary (diagnosis, examples).
  [[nodiscard]] std::string render() const;

  void clear();

 private:
  std::vector<Violation> violations_;
  std::map<std::string, std::size_t, std::less<>> by_kind_;
  std::map<std::string, std::size_t, std::less<>> by_contract_;
};

}  // namespace orte::rv
