// MonitorRegistry: the fan-in point of the runtime-verification layer. It
// subscribes ONE listener to the sim::Trace and routes each record through
// a (category_id, subject_id) index built at attach() time from the
// monitors' declared subscriptions. Per-subject monitors (arrival,
// deadline, latency source/sink) are reached in one hash lookup by interned
// ID — cost per record is O(1) in the monitor count, zero for categories
// nobody watches; a per-category wildcard bucket serves any-subject
// automaton rules.
//
// Violations flow three ways, mirroring §4's error-containment story:
//  (a) recorded in the queryable HealthReport, which keeps *rate-based*
//      per-contract stats: violating vs total judged observations, so a
//      spec with confidence c tolerates ⌊(1-c)·N⌋ violations per window
//      before its budget is exceeded (a single noisy 99 %-confidence
//      contract no longer degrades a whole ECU),
//  (b) reported to bsw::Dem as failed events (auto-registered per contract)
//      while the contract is over budget, so DTCs debounce and mature
//      exactly like any other monitored fault; flush() closes each
//      evaluation window and reports *passed* for contracts back within
//      budget, letting their DTCs heal and age,
//  (c) escalated: once an over-budget contract accumulates enough window
//      violations, a bsw::ModeMachine transition into a degraded mode is
//      requested and an optional quarantine hook fires (vfb::System wires
//      it to drop the offending SWC's outputs — graceful degradation, the
//      runtime twin of the isolation layer's budget enforcement).
//
// The loop then CLOSES (§2 "consistent and non-ambiguous error handling"):
// the registry subscribes to Dem::on_aged_out, and when a contract DTC ages
// out after debounced healthy operation cycles it releases the matching RTE
// quarantine (release hook, pre-wired by vfb::System), resyncs the
// contract's monitors, requests the recovery mode, and re-arms escalation —
// violate → degrade → heal → age out → recover → re-arm, no manual release.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "rv/health.hpp"
#include "rv/monitors.hpp"
#include "sim/trace.hpp"

namespace orte::rv {

class MonitorRegistry {
 public:
  using ViolationCallback = std::function<void(const Violation&)>;
  /// Receives the instance/subject to sanction (from Violation::subject's
  /// first path segment).
  using QuarantineHook = std::function<void(const std::string& instance,
                                            const Violation& cause)>;
  /// Receives the instance to rehabilitate when its contract's DTC aged out.
  using ReleaseHook = std::function<void(const std::string& instance)>;

  explicit MonitorRegistry(sim::Trace& trace);
  MonitorRegistry(const MonitorRegistry&) = delete;
  MonitorRegistry& operator=(const MonitorRegistry&) = delete;

  // --- Population -----------------------------------------------------------
  ArrivalMonitor& add_arrival(ArrivalSpec spec);
  DeadlineMonitor& add_deadline(DeadlineSpec spec);
  LatencyMonitor& add_latency(LatencySpec spec);
  RangeMonitor& add_range(RangeSpec spec);
  AutomatonMonitor& add_automaton(AutomatonSpec spec);
  void add(std::unique_ptr<Monitor> monitor);

  // --- Escalation wiring ----------------------------------------------------
  /// Report over-budget contracts as failed DEM events "rv.<contract>";
  /// events are auto-registered on first use with the given debounce
  /// threshold, so a DTC matures only after `debounce_threshold` over-budget
  /// violations. Also subscribes to DTC aging: when "rv.<contract>" ages
  /// out, the matching quarantine is released, the contract's monitors are
  /// resynced, and (once no contract DTC remains) the recovery mode is
  /// requested and escalation re-armed.
  void report_to(bsw::Dem& dem, std::int32_t debounce_threshold = 1,
                 std::uint32_t aging_cycles = 3);
  /// Request `degraded_mode` once a single contract is over its violation
  /// budget with at least `threshold` window violations (re-armed by
  /// recovery or reset()). A threshold of 0 is coerced to 1.
  void escalate_to(bsw::ModeMachine& modes, std::string degraded_mode,
                   std::size_t threshold = 1);
  /// Called with the offending instance when escalation triggers. Inert
  /// until escalate_to() arms escalation (vfb::System pre-wires this hook;
  /// sanctions need the integrator's explicit opt-in to a degraded mode).
  void quarantine_with(QuarantineHook hook);
  /// Called with the rehabilitated instance when its contract's DTC ages
  /// out (vfb::System pre-wires this to Rte::release).
  void release_with(ReleaseHook hook);
  /// Mode requested when the last contract DTC ages out after an
  /// escalation. Empty (the default) = return to the mode that was current
  /// when escalation fired. The transition must be declared on the mode
  /// machine (e.g. DEGRADED -> RUN) or the request is rejected.
  void recover_to(std::string recovery_mode);
  /// Minimum judged observations a contract's window needs before budget
  /// verdicts apply (warm-up): below it, neither DEM reporting nor
  /// escalation judge the contract. Default 0 (judge immediately).
  void set_warmup(std::uint64_t min_observations);
  void on_violation(ViolationCallback cb);

  /// Feed a violation raised OUTSIDE the trace-routed monitors into the
  /// registry pipeline (health stats, DEM reporting, callbacks, escalation)
  /// — the fan-in for detectors that are not trace observers, e.g. watchdog
  /// alive supervision (vfb::System reports expiries as kind "alive").
  void report_external(const Violation& violation);

  // --- Evaluation -----------------------------------------------------------
  /// Close one evaluation window: pull every monitor's observation count
  /// into the health report, report each known contract to the DEM (failed
  /// while over budget, passed when back within), evaluate escalation for
  /// contracts whose warm-up completed without a fresh violation, then
  /// start a new window. Call periodically (e.g. once per operation cycle,
  /// before Dem::operation_cycle_end) — the heartbeat of the §2 loop.
  void flush();

  // --- Queries --------------------------------------------------------------
  [[nodiscard]] const HealthReport& health() const { return health_; }
  [[nodiscard]] std::size_t monitor_count() const { return monitors_.size(); }
  /// Records whose category at least one monitor subscribes to (routed
  /// through the dispatch index — the same semantics as the pre-interning
  /// category router, whether or not a subject bucket matched).
  [[nodiscard]] std::uint64_t records_routed() const {
    return records_routed_;
  }
  /// Of the routed records, how many were delivered to at least one
  /// monitor (subject bucket hit or wildcard present).
  [[nodiscard]] std::uint64_t records_delivered() const {
    return records_delivered_;
  }
  /// Every attached latency monitor, in attach order — the static/dynamic
  /// cross-check surface (each spec carries the holistic static_bound next
  /// to the monitor's observed worst()).
  [[nodiscard]] std::vector<const LatencyMonitor*> latency_monitors() const;
  [[nodiscard]] bool escalated() const { return escalated_; }
  /// Completed violate→degrade→heal→recover cycles.
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }

  /// Forget all recorded violations and re-arm escalation (monitors keep
  /// their incremental state; use between operation cycles).
  void reset();

 private:
  /// Dispatch bucket of one watched category: monitors keyed by interned
  /// subject ID, plus the wildcard (any-subject) list. A monitor with a
  /// wildcard subscription on a category is never also entered in that
  /// category's subject buckets (it would observe the same record twice).
  struct CategoryBucket {
    std::unordered_map<sim::TraceId, std::vector<Monitor*>> by_subject;
    std::vector<Monitor*> wildcard;
  };

  /// Per-contract escalation bookkeeping.
  struct ContractCtx {
    std::vector<Monitor*> monitors;
    std::string quarantined_instance;  ///< Empty = not quarantined by us.
    Violation last_violation;          ///< Cause for flush-time escalation.
    bool has_violation = false;
  };

  void attach(Monitor& monitor);
  void handle(const Violation& v);
  /// Pull cumulative observations of `contract`'s monitors into health_.
  void sync_observations(const std::string& contract, const ContractCtx& ctx);
  /// Warm-up-gated budget verdict for the contract's current window.
  [[nodiscard]] bool judged_over_budget(
      const HealthReport::ContractStats& stats) const;
  void report_budget_to_dem(const std::string& contract, bool over);
  void escalate(const Violation& cause);
  void handle_aged_out(const bsw::Dtc& dtc);

  sim::Trace& trace_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::unordered_map<sim::TraceId, CategoryBucket> index_;
  std::map<std::string, ContractCtx, std::less<>> contracts_;
  HealthReport health_;
  std::vector<ViolationCallback> callbacks_;

  bsw::Dem* dem_ = nullptr;
  std::int32_t dem_threshold_ = 1;
  std::uint32_t dem_aging_ = 3;
  bool dem_subscribed_ = false;
  std::set<std::string, std::less<>> dem_events_;  ///< Auto-registered.
  bsw::ModeMachine* modes_ = nullptr;
  std::string degraded_mode_;
  std::string recovery_mode_;        ///< Explicit target; "" = snapshot.
  std::string pre_escalation_mode_;  ///< Captured when escalation fired.
  std::size_t escalation_threshold_ = 1;
  std::uint64_t warmup_ = 0;
  bool escalated_ = false;
  std::uint64_t recoveries_ = 0;
  QuarantineHook quarantine_;
  ReleaseHook release_;
  std::uint64_t records_routed_ = 0;
  std::uint64_t records_delivered_ = 0;
};

/// Stable 24-bit DTC code for a contract name (FNV-1a folded), so the same
/// contract reports the same DTC across runs without a central registry.
[[nodiscard]] std::uint32_t contract_dtc_code(std::string_view contract);

}  // namespace orte::rv
