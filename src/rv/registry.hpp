// MonitorRegistry: the fan-in point of the runtime-verification layer. It
// subscribes ONE listener to the sim::Trace and routes each record through
// a (category_id, subject_id) index built at attach() time from the
// monitors' declared subscriptions. Per-subject monitors (arrival,
// deadline, latency source/sink) are reached in one hash lookup by interned
// ID — cost per record is O(1) in the monitor count, zero for categories
// nobody watches; a per-category wildcard bucket serves any-subject
// automaton rules.
//
// Violations flow three ways, mirroring §4's error-containment story:
//  (a) recorded in the queryable HealthReport,
//  (b) reported to bsw::Dem as failed events (auto-registered per contract)
//      so DTCs debounce and mature exactly like any other monitored fault,
//  (c) escalated: once the violation count reaches a threshold, a
//      bsw::ModeMachine transition into a degraded mode is requested and an
//      optional quarantine hook fires (vfb::System wires it to drop the
//      offending SWC's outputs — graceful degradation, the runtime twin of
//      the isolation layer's budget enforcement).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "rv/health.hpp"
#include "rv/monitors.hpp"
#include "sim/trace.hpp"

namespace orte::rv {

class MonitorRegistry {
 public:
  using ViolationCallback = std::function<void(const Violation&)>;
  /// Receives the instance/subject to sanction (from Violation::subject's
  /// first path segment).
  using QuarantineHook = std::function<void(const std::string& instance,
                                            const Violation& cause)>;

  explicit MonitorRegistry(sim::Trace& trace);
  MonitorRegistry(const MonitorRegistry&) = delete;
  MonitorRegistry& operator=(const MonitorRegistry&) = delete;

  // --- Population -----------------------------------------------------------
  ArrivalMonitor& add_arrival(ArrivalSpec spec);
  DeadlineMonitor& add_deadline(DeadlineSpec spec);
  LatencyMonitor& add_latency(LatencySpec spec);
  AutomatonMonitor& add_automaton(AutomatonSpec spec);
  void add(std::unique_ptr<Monitor> monitor);

  // --- Escalation wiring ----------------------------------------------------
  /// Report every violation as a failed DEM event "rv.<contract>"; events
  /// are auto-registered on first use with the given debounce threshold, so
  /// a DTC matures only after `debounce_threshold` violations.
  void report_to(bsw::Dem& dem, std::int32_t debounce_threshold = 1,
                 std::uint32_t aging_cycles = 3);
  /// Request `degraded_mode` once the total violation count reaches
  /// `threshold` (requested once; re-armed only by reset()).
  void escalate_to(bsw::ModeMachine& modes, std::string degraded_mode,
                   std::size_t threshold = 1);
  /// Called with the offending instance when escalation triggers. Inert
  /// until escalate_to() arms escalation (vfb::System pre-wires this hook;
  /// sanctions need the integrator's explicit opt-in to a degraded mode).
  void quarantine_with(QuarantineHook hook);
  void on_violation(ViolationCallback cb);

  // --- Queries --------------------------------------------------------------
  [[nodiscard]] const HealthReport& health() const { return health_; }
  [[nodiscard]] std::size_t monitor_count() const { return monitors_.size(); }
  /// Records whose category at least one monitor subscribes to (routed
  /// through the dispatch index — the same semantics as the pre-interning
  /// category router, whether or not a subject bucket matched).
  [[nodiscard]] std::uint64_t records_routed() const {
    return records_routed_;
  }
  /// Of the routed records, how many were delivered to at least one
  /// monitor (subject bucket hit or wildcard present).
  [[nodiscard]] std::uint64_t records_delivered() const {
    return records_delivered_;
  }
  [[nodiscard]] bool escalated() const { return escalated_; }

  /// Forget all recorded violations and re-arm escalation (monitors keep
  /// their incremental state; use between operation cycles).
  void reset();

 private:
  /// Dispatch bucket of one watched category: monitors keyed by interned
  /// subject ID, plus the wildcard (any-subject) list. A monitor with a
  /// wildcard subscription on a category is never also entered in that
  /// category's subject buckets (it would observe the same record twice).
  struct CategoryBucket {
    std::unordered_map<sim::TraceId, std::vector<Monitor*>> by_subject;
    std::vector<Monitor*> wildcard;
  };

  void attach(Monitor& monitor);
  void handle(const Violation& v);

  sim::Trace& trace_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::unordered_map<sim::TraceId, CategoryBucket> index_;
  HealthReport health_;
  std::vector<ViolationCallback> callbacks_;

  bsw::Dem* dem_ = nullptr;
  std::int32_t dem_threshold_ = 1;
  std::uint32_t dem_aging_ = 3;
  std::set<std::string, std::less<>> dem_events_;  ///< Auto-registered.
  bsw::ModeMachine* modes_ = nullptr;
  std::string degraded_mode_;
  std::size_t escalation_threshold_ = 1;
  bool escalated_ = false;
  QuarantineHook quarantine_;
  std::uint64_t records_routed_ = 0;
  std::uint64_t records_delivered_ = 0;
};

/// Stable 24-bit DTC code for a contract name (FNV-1a folded), so the same
/// contract reports the same DTC across runs without a central registry.
[[nodiscard]] std::uint32_t contract_dtc_code(std::string_view contract);

}  // namespace orte::rv
