// MonitorRegistry: the fan-in point of the runtime-verification layer. It
// subscribes ONE listener to the sim::Trace and routes each record to the
// monitors interested in its category (an index, not a scan — cost per
// record is one map lookup, zero for categories nobody watches).
//
// Violations flow three ways, mirroring §4's error-containment story:
//  (a) recorded in the queryable HealthReport,
//  (b) reported to bsw::Dem as failed events (auto-registered per contract)
//      so DTCs debounce and mature exactly like any other monitored fault,
//  (c) escalated: once the violation count reaches a threshold, a
//      bsw::ModeMachine transition into a degraded mode is requested and an
//      optional quarantine hook fires (vfb::System wires it to drop the
//      offending SWC's outputs — graceful degradation, the runtime twin of
//      the isolation layer's budget enforcement).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "rv/health.hpp"
#include "rv/monitors.hpp"
#include "sim/trace.hpp"

namespace orte::rv {

class MonitorRegistry {
 public:
  using ViolationCallback = std::function<void(const Violation&)>;
  /// Receives the instance/subject to sanction (from Violation::subject's
  /// first path segment).
  using QuarantineHook = std::function<void(const std::string& instance,
                                            const Violation& cause)>;

  explicit MonitorRegistry(sim::Trace& trace);
  MonitorRegistry(const MonitorRegistry&) = delete;
  MonitorRegistry& operator=(const MonitorRegistry&) = delete;

  // --- Population -----------------------------------------------------------
  ArrivalMonitor& add_arrival(ArrivalSpec spec);
  DeadlineMonitor& add_deadline(DeadlineSpec spec);
  LatencyMonitor& add_latency(LatencySpec spec);
  AutomatonMonitor& add_automaton(AutomatonSpec spec);
  void add(std::unique_ptr<Monitor> monitor);

  // --- Escalation wiring ----------------------------------------------------
  /// Report every violation as a failed DEM event "rv.<contract>"; events
  /// are auto-registered on first use with the given debounce threshold, so
  /// a DTC matures only after `debounce_threshold` violations.
  void report_to(bsw::Dem& dem, std::int32_t debounce_threshold = 1,
                 std::uint32_t aging_cycles = 3);
  /// Request `degraded_mode` once the total violation count reaches
  /// `threshold` (requested once; re-armed only by reset()).
  void escalate_to(bsw::ModeMachine& modes, std::string degraded_mode,
                   std::size_t threshold = 1);
  /// Called with the offending instance when escalation triggers. Inert
  /// until escalate_to() arms escalation (vfb::System pre-wires this hook;
  /// sanctions need the integrator's explicit opt-in to a degraded mode).
  void quarantine_with(QuarantineHook hook);
  void on_violation(ViolationCallback cb);

  // --- Queries --------------------------------------------------------------
  [[nodiscard]] const HealthReport& health() const { return health_; }
  [[nodiscard]] std::size_t monitor_count() const { return monitors_.size(); }
  [[nodiscard]] std::uint64_t records_routed() const {
    return records_routed_;
  }
  [[nodiscard]] bool escalated() const { return escalated_; }

  /// Forget all recorded violations and re-arm escalation (monitors keep
  /// their incremental state; use between operation cycles).
  void reset();

 private:
  void attach(Monitor& monitor);
  void handle(const Violation& v);

  sim::Trace& trace_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::map<std::string, std::vector<Monitor*>, std::less<>> by_category_;
  HealthReport health_;
  std::vector<ViolationCallback> callbacks_;

  bsw::Dem* dem_ = nullptr;
  std::int32_t dem_threshold_ = 1;
  std::uint32_t dem_aging_ = 3;
  std::set<std::string, std::less<>> dem_events_;  ///< Auto-registered.
  bsw::ModeMachine* modes_ = nullptr;
  std::string degraded_mode_;
  std::size_t escalation_threshold_ = 1;
  bool escalated_ = false;
  QuarantineHook quarantine_;
  std::uint64_t records_routed_ = 0;
};

/// Stable 24-bit DTC code for a contract name (FNV-1a folded), so the same
/// contract reports the same DTC across runs without a central registry.
[[nodiscard]] std::uint32_t contract_dtc_code(std::string_view contract);

}  // namespace orte::rv
