#include "tte/tte_switch.hpp"

#include <algorithm>
#include <stdexcept>

namespace orte::tte {

void TteEndpoint::send(std::uint32_t flow, std::vector<std::uint8_t> payload) {
  switch_->submit(index_, flow, std::move(payload));
}

TteSwitch::TteSwitch(sim::Kernel& kernel, sim::Trace& trace, TteConfig cfg)
    : kernel_(kernel),
      trace_(trace),
      cfg_(std::move(cfg)),
      bit_time_(1'000'000'000 / cfg_.link_bandwidth_bps) {
  if (cfg_.link_bandwidth_bps <= 0) {
    throw std::invalid_argument("TTE link bandwidth must be positive");
  }
}

TteEndpoint& TteSwitch::attach(std::string name) {
  if (started_) throw std::logic_error("TteSwitch::attach after start()");
  const int index = static_cast<int>(endpoints_.size());
  endpoints_.push_back(std::unique_ptr<TteEndpoint>(
      new TteEndpoint(*this, index, std::move(name))));
  egress_.emplace_back();
  return *endpoints_.back();
}

void TteSwitch::add_flow(TteFlow flow) {
  if (started_) throw std::logic_error("TteSwitch::add_flow after start()");
  if (flow.source < 0 ||
      flow.source >= static_cast<int>(endpoints_.size()) ||
      flow.destination < 0 ||
      flow.destination >= static_cast<int>(endpoints_.size())) {
    throw std::invalid_argument("TTE flow references unknown endpoint");
  }
  if (find_flow(flow.id) != nullptr) {
    throw std::invalid_argument("duplicate TTE flow id");
  }
  if (flow.cls == TrafficClass::kTimeTriggered &&
      (flow.period <= 0 || flow.offset < 0 || flow.offset >= flow.period)) {
    throw std::invalid_argument("TT flow needs offset within a period");
  }
  if (flow.cls == TrafficClass::kRateConstrained && flow.bag <= 0) {
    throw std::invalid_argument("RC flow needs a positive BAG");
  }
  flows_.push_back(std::move(flow));
}

const TteFlow* TteSwitch::find_flow(std::uint32_t id) const {
  for (const auto& f : flows_) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

const sim::Stats& TteSwitch::flow_latency_us(std::uint32_t flow) const {
  auto it = latency_us_.find(flow);
  if (it == latency_us_.end()) {
    throw std::invalid_argument("no latency samples for flow");
  }
  return it->second;
}

void TteSwitch::start() {
  if (started_) throw std::logic_error("TteSwitch::start called twice");
  started_ = true;
  for (const auto& flow : flows_) {
    if (flow.cls != TrafficClass::kTimeTriggered) continue;
    const TteFlow* f = &flow;
    kernel_.schedule_periodic(
        kernel_.now() + f->offset, f->period, [this, f] { dispatch_tt(*f); },
        sim::EventOrder::kHardware);
  }
}

void TteSwitch::submit(int source, std::uint32_t flow_id,
                       std::vector<std::uint8_t> payload) {
  const TteFlow* flow = find_flow(flow_id);
  if (flow == nullptr) throw std::invalid_argument("unknown TTE flow");
  if (flow->source != source) {
    throw std::logic_error("endpoint sends on a flow it does not own");
  }
  switch (flow->cls) {
    case TrafficClass::kTimeTriggered:
      // State semantics: the schedule transmits the latest value.
      tt_buffer_[flow_id] = std::move(payload);
      return;
    case TrafficClass::kRateConstrained: {
      const Time now = kernel_.now();
      auto it = rc_last_tx_.find(flow_id);
      if (it != rc_last_tx_.end() && now - it->second < flow->bag) {
        ++drops_;  // BAG violation: the policer contains the babbler
        trace_.emit(now, "tte.police_drop", std::to_string(flow_id));
        return;
      }
      rc_last_tx_[flow_id] = now;
      break;
    }
    case TrafficClass::kBestEffort:
      break;
  }
  TteFrame frame;
  frame.flow = flow_id;
  frame.payload = std::move(payload);
  frame.enqueued_at = kernel_.now();
  // Ingress serialization + switch forwarding latency, then egress queueing.
  // (Compute the delay before moving the frame into the closure — argument
  // evaluation order is unspecified.)
  const Duration ingress = tx_time(frame.payload.size()) + cfg_.switch_latency;
  kernel_.schedule_in(ingress,
                      [this, flow, frame = std::move(frame)]() mutable {
                        to_egress(*flow, std::move(frame));
                      },
                      sim::EventOrder::kHardware);
}

void TteSwitch::dispatch_tt(const TteFlow& flow) {
  auto it = tt_buffer_.find(flow.id);
  if (it == tt_buffer_.end() || !it->second.has_value()) return;
  TteFrame frame;
  frame.flow = flow.id;
  frame.payload = std::move(*it->second);
  it->second.reset();
  frame.enqueued_at = kernel_.now();
  trace_.emit(kernel_.now(), "tte.tt_dispatch", std::to_string(flow.id));
  const Duration ingress = tx_time(frame.payload.size()) + cfg_.switch_latency;
  kernel_.schedule_in(ingress,
                      [this, f = &flow, frame = std::move(frame)]() mutable {
                        to_egress(*f, std::move(frame));
                      },
                      sim::EventOrder::kHardware);
}

void TteSwitch::to_egress(const TteFlow& flow, TteFrame frame) {
  auto& port = egress_[static_cast<std::size_t>(flow.destination)];
  switch (flow.cls) {
    case TrafficClass::kTimeTriggered:
      port.tt.push_back(std::move(frame));
      break;
    case TrafficClass::kRateConstrained:
      port.rc.push_back(std::move(frame));
      break;
    case TrafficClass::kBestEffort:
      port.be.push_back(std::move(frame));
      break;
  }
  serve_egress(static_cast<std::size_t>(flow.destination));
}

void TteSwitch::serve_egress(std::size_t port_index) {
  auto& port = egress_[port_index];
  if (port.busy) return;  // shuffling: the in-flight frame completes first
  std::deque<TteFrame>* queue = nullptr;
  if (!port.tt.empty()) {
    queue = &port.tt;
  } else if (!port.rc.empty()) {
    queue = &port.rc;
  } else if (!port.be.empty()) {
    queue = &port.be;
  } else {
    return;
  }
  TteFrame frame = std::move(queue->front());
  queue->pop_front();
  port.busy = true;
  const Duration egress_tx = tx_time(frame.payload.size());
  kernel_.schedule_in(
      egress_tx,
      [this, port_index, frame = std::move(frame)]() mutable {
        auto& port = egress_[port_index];
        port.busy = false;
        frame.delivered_at = kernel_.now();
        latency_us_[frame.flow].add(
            sim::to_us(frame.delivered_at - frame.enqueued_at));
        ++delivered_;
        trace_.emit(kernel_.now(), "tte.rx", std::to_string(frame.flow));
        endpoints_[port_index]->deliver(frame);
        serve_egress(port_index);
      },
      sim::EventOrder::kHardware);
}

}  // namespace orte::tte
