// Time-triggered Ethernet (§4: "time-triggered protocols, such as FlexRay,
// TTP or Time-triggered Ethernet").
//
// One switch, one full-duplex link per endpoint, three traffic classes:
//  * TT  (time-triggered)  — frames leave the source at schedule-defined
//    instants (offset within a period) and take priority at the egress port;
//    a lower-class frame already in transmission is *shuffled* (the TT frame
//    waits for it), so TT jitter is bounded by one max-size lower-class
//    frame — the integration policy real TTE switches implement.
//  * RC  (rate-constrained) — AFDX-style: each flow declares a BAG (minimum
//    inter-frame gap); the ingress policer drops violating frames, which is
//    what contains a babbling RC talker.
//  * BE  (best effort)      — whatever bandwidth is left.
// Store-and-forward: ingress serialization + switch latency + egress
// serialization (with class-priority queueing at the egress port).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace orte::tte {

using sim::Duration;
using sim::Time;

enum class TrafficClass { kTimeTriggered, kRateConstrained, kBestEffort };

struct TteFlow {
  std::uint32_t id = 0;
  TrafficClass cls = TrafficClass::kBestEffort;
  int source = -1;
  int destination = -1;
  std::size_t bytes = 64;   ///< Frame size (TT) / declared max (RC, BE).
  Duration period = 0;      ///< TT: dispatch period.
  Duration offset = 0;      ///< TT: dispatch offset within the period.
  Duration bag = 0;         ///< RC: minimum inter-frame gap (policed).
};

struct TteFrame {
  std::uint32_t flow = 0;
  net::Payload payload;  ///< Shared buffer: egress queues copy it for free.
  Time enqueued_at = 0;
  Time delivered_at = 0;
};

struct TteConfig {
  std::string name = "tte0";
  std::int64_t link_bandwidth_bps = 100'000'000;
  Duration switch_latency = sim::microseconds(2);  ///< Forwarding delay.
};

class TteSwitch;

class TteEndpoint {
 public:
  using RxCallback = std::function<void(const TteFrame&)>;

  /// Submit application data on a flow owned by this endpoint.
  /// TT flows: overwrites the flow buffer (state semantics; the schedule
  /// transmits the latest value). RC/BE: queues for immediate transmission,
  /// subject to policing (RC) and egress arbitration.
  void send(std::uint32_t flow, std::vector<std::uint8_t> payload);

  void on_receive(RxCallback cb) { rx_.push_back(std::move(cb)); }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class TteSwitch;
  TteEndpoint(TteSwitch& sw, int index, std::string name)
      : switch_(&sw), index_(index), name_(std::move(name)) {}
  void deliver(const TteFrame& f) {
    for (const auto& cb : rx_) cb(f);
  }

  TteSwitch* switch_;
  int index_;
  std::string name_;
  std::vector<RxCallback> rx_;
};

class TteSwitch {
 public:
  TteSwitch(sim::Kernel& kernel, sim::Trace& trace, TteConfig cfg);
  TteSwitch(const TteSwitch&) = delete;
  TteSwitch& operator=(const TteSwitch&) = delete;

  TteEndpoint& attach(std::string name);
  void add_flow(TteFlow flow);

  /// Arm the TT dispatch schedule. Call once after attach/add_flow.
  void start();

  [[nodiscard]] Duration tx_time(std::size_t bytes) const {
    // Minimum Ethernet frame on the wire is 84 bytes (incl. preamble/IFG).
    const std::size_t wire = std::max<std::size_t>(bytes + 38, 84);
    return static_cast<Duration>(wire) * 8 * bit_time_;
  }
  [[nodiscard]] const sim::Stats& flow_latency_us(std::uint32_t flow) const;
  [[nodiscard]] std::uint64_t policing_drops() const { return drops_; }
  [[nodiscard]] std::uint64_t frames_delivered() const { return delivered_; }
  [[nodiscard]] const TteConfig& config() const { return cfg_; }

 private:
  friend class TteEndpoint;

  struct Egress {
    bool busy = false;
    std::deque<TteFrame> tt;
    std::deque<TteFrame> rc;
    std::deque<TteFrame> be;
  };

  void submit(int source, std::uint32_t flow_id,
              std::vector<std::uint8_t> payload);
  void dispatch_tt(const TteFlow& flow);
  /// Frame has finished ingress + switch; enqueue at the egress port.
  void to_egress(const TteFlow& flow, TteFrame frame);
  void serve_egress(std::size_t port);

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  TteConfig cfg_;
  Duration bit_time_;
  std::vector<std::unique_ptr<TteEndpoint>> endpoints_;
  std::vector<TteFlow> flows_;
  std::vector<Egress> egress_;
  std::map<std::uint32_t, std::optional<net::Payload>> tt_buffer_;
  std::map<std::uint32_t, Time> rc_last_tx_;
  std::map<std::uint32_t, sim::Stats> latency_us_;
  std::uint64_t drops_ = 0;
  std::uint64_t delivered_ = 0;
  bool started_ = false;

  [[nodiscard]] const TteFlow* find_flow(std::uint32_t id) const;
};

}  // namespace orte::tte
