#include "sim/kernel.hpp"

#include <stdexcept>
#include <utility>

#include "sim/trace.hpp"

namespace orte::sim {

std::uint32_t Kernel::alloc_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  pool_[slot].live = true;
  return slot;
}

void Kernel::free_slot(std::uint32_t slot) {
  Slot& s = pool_[slot];
  s.live = false;
  s.action = nullptr;
  s.period = 0;
  s.pending_seq = 0;
  ++s.generation;  // invalidates every outstanding handle to this slot
  free_slots_.push_back(slot);
}

void Kernel::push_occurrence(std::uint32_t slot, Time when,
                             std::uint32_t order) {
  const std::uint64_t seq = next_seq_++;
  pool_[slot].pending_seq = seq;
  const HeapItem item{when, (static_cast<std::uint64_t>(order) << 32) | slot,
                      seq};
  ++pushed_;
  // Wheel placement is a pure function of (when, now): occurrences due in a
  // later bucket but within the horizon are parked; everything else (due in
  // the current ~65 µs bucket, or past the ~16.8 ms horizon) goes straight
  // to the heap. Where a key waits never affects pop order — the heap
  // comparator alone decides that.
  const std::uint64_t now_bucket =
      static_cast<std::uint64_t>(now_) >> kWheelShift;
  const std::uint64_t when_bucket =
      static_cast<std::uint64_t>(when) >> kWheelShift;
  if (when_bucket != now_bucket && when_bucket - now_bucket < kWheelBuckets) {
    wheel_[when_bucket & (kWheelBuckets - 1)].push_back(item);
    ++wheel_count_;
    ++wheel_scheduled_;
    if (when < wheel_min_) wheel_min_ = when;
  } else {
    queue_.push(item);
  }
  const std::uint64_t depth = queue_.size() + wheel_count_;
  if (depth > peak_depth_) peak_depth_ = depth;
}

void Kernel::flush_wheel(Time limit) {
  while (wheel_count_ != 0 && wheel_min_ <= limit) {
    const std::size_t index =
        (static_cast<std::uint64_t>(wheel_min_) >> kWheelShift) &
        (kWheelBuckets - 1);
    std::vector<HeapItem>& bucket = wheel_[index];
    wheel_count_ -= bucket.size();
    wheel_flushed_ += bucket.size();
    for (const HeapItem& item : bucket) queue_.push(item);
    bucket.clear();
    recompute_wheel_min(index);
  }
}

void Kernel::recompute_wheel_min(std::size_t drained_index) {
  wheel_min_ = kForever;
  if (wheel_count_ == 0) return;
  // Live wheel entries all lie within one horizon window after now, so the
  // circular walk from the drained bucket visits buckets in increasing time
  // order; the first occupied one contains the minimum.
  for (std::size_t step = 1; step <= kWheelBuckets; ++step) {
    const std::vector<HeapItem>& bucket =
        wheel_[(drained_index + step) & (kWheelBuckets - 1)];
    if (bucket.empty()) continue;
    for (const HeapItem& item : bucket) {
      if (item.when < wheel_min_) wheel_min_ = item.when;
    }
    return;
  }
}

EventHandle Kernel::schedule_at(Time when, Action action, EventOrder order) {
  if (when < now_) {
    throw std::invalid_argument("Kernel::schedule_at: time in the past");
  }
  const std::uint32_t slot = alloc_slot();
  Slot& s = pool_[slot];
  s.action = std::move(action);
  s.period = 0;
  s.order = static_cast<std::uint32_t>(order);
  const EventHandle handle(slot, s.generation);
  push_occurrence(slot, when, s.order);
  return handle;
}

EventHandle Kernel::schedule_in(Duration delay, Action action,
                                EventOrder order) {
  return schedule_at(now_ + delay, std::move(action), order);
}

EventHandle Kernel::schedule_periodic(Time first, Duration period,
                                      Action action, EventOrder order) {
  if (period <= 0) {
    throw std::invalid_argument("Kernel::schedule_periodic: period <= 0");
  }
  if (first < now_) {
    throw std::invalid_argument("Kernel::schedule_periodic: first in past");
  }
  const std::uint32_t slot = alloc_slot();
  Slot& s = pool_[slot];
  s.action = std::move(action);
  s.period = period;
  s.order = static_cast<std::uint32_t>(order);
  const EventHandle handle(slot, s.generation);
  push_occurrence(slot, first, s.order);
  return handle;
}

void Kernel::cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= pool_.size()) return;
  Slot& s = pool_[handle.slot_];
  if (!s.live || s.generation != handle.generation_) return;  // stale handle
  free_slot(handle.slot_);
  ++cancelled_count_;
}

Time Kernel::run_until(Time horizon) {
  stopped_ = false;
  while (!stopped_) {
    if (queue_.empty()) {
      if (wheel_count_ == 0 || wheel_min_ > horizon) break;
      flush_wheel(wheel_min_);
      continue;
    }
    // Promote every parked key that could precede (or tie with) the heap
    // front; afterwards the heap front IS the global (when, order, seq)
    // minimum of all pending occurrences.
    if (wheel_count_ != 0 && wheel_min_ <= queue_.top().when) {
      flush_wheel(queue_.top().when);
    }
    const HeapItem item = queue_.top();
    if (item.when > horizon) break;
    queue_.pop();
    ++popped_;
    const auto slot = static_cast<std::uint32_t>(item.order_slot);
    Slot& s = pool_[slot];
    if (!s.live || s.pending_seq != item.seq) {
      ++skipped_dead_;  // cancelled (or recycled) slot: key purged right here
      continue;
    }
    now_ = item.when;
    ++executed_;
    if (s.period > 0) {
      // Run the pooled action in place (moved out for the call: the pool may
      // grow — and this slot may be cancelled or even recycled — while it
      // runs). Re-arm only if the series survived its own occurrence.
      const std::uint32_t generation = s.generation;
      Action action = std::move(s.action);
      s.pending_seq = 0;
      action();
      Slot& after = pool_[slot];
      if (after.live && after.generation == generation) {
        after.action = std::move(action);
        push_occurrence(slot, now_ + after.period, after.order);
      }
    } else {
      Action action = std::move(s.action);
      free_slot(slot);  // before the call: the action may reuse the slot
      action();
    }
  }
  if (!stopped_ && now_ < horizon && horizon != kForever) now_ = horizon;
  return now_;
}

KernelCounters Kernel::counters() const {
  KernelCounters c;
  c.pushed = pushed_;
  c.popped = popped_;
  c.executed = executed_;
  c.cancelled = cancelled_count_;
  c.skipped_dead = skipped_dead_;
  c.peak_queue_depth = peak_depth_;
  c.queue_depth = queue_.size() + wheel_count_;
  c.wheel_scheduled = wheel_scheduled_;
  c.wheel_flushed = wheel_flushed_;
  c.pool_slots = pool_.size();
  return c;
}

void Kernel::trace_counters(Trace& trace, std::string_view subject) const {
  const KernelCounters c = counters();
  const auto emit = [&](std::string_view category, std::uint64_t value) {
    trace.emit(now_, category, subject, static_cast<std::int64_t>(value));
  };
  emit("kernel.pushed", c.pushed);
  emit("kernel.popped", c.popped);
  emit("kernel.executed", c.executed);
  emit("kernel.cancelled", c.cancelled);
  emit("kernel.skipped_dead", c.skipped_dead);
  emit("kernel.peak_queue_depth", c.peak_queue_depth);
  emit("kernel.queue_depth", c.queue_depth);
  emit("kernel.wheel_scheduled", c.wheel_scheduled);
  emit("kernel.wheel_flushed", c.wheel_flushed);
  emit("kernel.pool_slots", c.pool_slots);
}

}  // namespace orte::sim
