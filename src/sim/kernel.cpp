#include "sim/kernel.hpp"

#include <stdexcept>
#include <utility>

#include "sim/trace.hpp"

namespace orte::sim {

EventHandle Kernel::schedule_at(Time when, Action action, EventOrder order) {
  if (when < now_) {
    throw std::invalid_argument("Kernel::schedule_at: time in the past");
  }
  Event ev;
  ev.when = when;
  ev.order = static_cast<int>(order);
  ev.seq = next_seq_++;
  ev.id = next_id_++;
  ev.action = std::move(action);
  EventHandle handle(ev.id);
  enqueue(std::move(ev));
  return handle;
}

EventHandle Kernel::schedule_in(Duration delay, Action action,
                                EventOrder order) {
  return schedule_at(now_ + delay, std::move(action), order);
}

EventHandle Kernel::schedule_periodic(Time first, Duration period,
                                      Action action, EventOrder order) {
  if (period <= 0) {
    throw std::invalid_argument("Kernel::schedule_periodic: period <= 0");
  }
  if (first < now_) {
    throw std::invalid_argument("Kernel::schedule_periodic: first in past");
  }
  const std::uint64_t id = next_id_++;
  periodics_.emplace(id, Periodic{period, static_cast<int>(order),
                                  std::make_shared<Action>(std::move(action))});
  push_periodic_occurrence(id, first);
  return EventHandle(id);
}

void Kernel::enqueue(Event ev) {
  pending_.emplace(ev.id, false);
  queue_.push(std::move(ev));
  ++pushed_;
  if (queue_.size() > peak_depth_) peak_depth_ = queue_.size();
}

void Kernel::push_periodic_occurrence(std::uint64_t id, Time when) {
  auto it = periodics_.find(id);
  if (it == periodics_.end()) return;  // series cancelled
  Event ev;
  ev.when = when;
  ev.order = it->second.order;
  ev.seq = next_seq_++;
  ev.id = id;
  const Duration period = it->second.period;
  auto payload = it->second.payload;
  ev.action = [this, id, period, payload]() {
    (*payload)();
    push_periodic_occurrence(id, now_ + period);
  };
  enqueue(std::move(ev));
}

void Kernel::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  bool effective = false;
  if (auto it = pending_.find(handle.id_);
      it != pending_.end() && !it->second) {
    it->second = true;  // the queued occurrence is skipped + purged at pop
    effective = true;
  }
  if (periodics_.erase(handle.id_) > 0) effective = true;
  if (effective) ++cancelled_count_;
}

Time Kernel::run_until(Time horizon) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.top().when > horizon) break;
    // Moving from top() before pop() is safe: pop_heap move-assigns over the
    // moved-from slot. Avoids a std::function deep copy per event.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    ++popped_;
    auto node = pending_.extract(ev.id);
    if (!node.empty() && node.mapped()) {
      ++skipped_dead_;  // dead event: its id is purged right here
      continue;
    }
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
  if (!stopped_ && now_ < horizon && horizon != kForever) now_ = horizon;
  return now_;
}

KernelCounters Kernel::counters() const {
  KernelCounters c;
  c.pushed = pushed_;
  c.popped = popped_;
  c.executed = executed_;
  c.cancelled = cancelled_count_;
  c.skipped_dead = skipped_dead_;
  c.peak_queue_depth = peak_depth_;
  c.queue_depth = queue_.size();
  return c;
}

void Kernel::trace_counters(Trace& trace, std::string_view subject) const {
  const KernelCounters c = counters();
  const auto emit = [&](std::string_view category, std::uint64_t value) {
    trace.emit(now_, category, subject, static_cast<std::int64_t>(value));
  };
  emit("kernel.pushed", c.pushed);
  emit("kernel.popped", c.popped);
  emit("kernel.executed", c.executed);
  emit("kernel.cancelled", c.cancelled);
  emit("kernel.skipped_dead", c.skipped_dead);
  emit("kernel.peak_queue_depth", c.peak_queue_depth);
  emit("kernel.queue_depth", c.queue_depth);
}

}  // namespace orte::sim
