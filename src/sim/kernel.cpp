#include "sim/kernel.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace orte::sim {

EventHandle Kernel::schedule_at(Time when, Action action, EventOrder order) {
  if (when < now_) {
    throw std::invalid_argument("Kernel::schedule_at: time in the past");
  }
  Event ev;
  ev.when = when;
  ev.order = static_cast<int>(order);
  ev.seq = next_seq_++;
  ev.id = next_id_++;
  ev.action = std::move(action);
  EventHandle handle(ev.id);
  queue_.push(std::move(ev));
  return handle;
}

EventHandle Kernel::schedule_in(Duration delay, Action action,
                                EventOrder order) {
  return schedule_at(now_ + delay, std::move(action), order);
}

EventHandle Kernel::schedule_periodic(Time first, Duration period,
                                      Action action, EventOrder order) {
  if (period <= 0) {
    throw std::invalid_argument("Kernel::schedule_periodic: period <= 0");
  }
  if (first < now_) {
    throw std::invalid_argument("Kernel::schedule_periodic: first in past");
  }
  const std::uint64_t id = next_id_++;
  periodics_.push_back(Periodic{id, period, static_cast<int>(order),
                                std::make_shared<Action>(std::move(action))});
  push_periodic_occurrence(id, first);
  return EventHandle(id);
}

void Kernel::push_periodic_occurrence(std::uint64_t id, Time when) {
  auto it = std::find_if(periodics_.begin(), periodics_.end(),
                         [id](const Periodic& p) { return p.id == id; });
  if (it == periodics_.end()) return;
  Event ev;
  ev.when = when;
  ev.order = it->order;
  ev.seq = next_seq_++;
  ev.id = id;
  const Duration period = it->period;
  auto payload = it->payload;
  ev.action = [this, id, period, payload]() {
    (*payload)();
    if (!is_cancelled(id)) push_periodic_occurrence(id, now_ + period);
  };
  queue_.push(std::move(ev));
}

void Kernel::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  cancelled_.push_back(handle.id_);
  periodics_.erase(std::remove_if(periodics_.begin(), periodics_.end(),
                                  [&](const Periodic& p) {
                                    return p.id == handle.id_;
                                  }),
                   periodics_.end());
}

bool Kernel::is_cancelled(std::uint64_t id) {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

Time Kernel::run_until(Time horizon) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.top().when > horizon) break;
    Event ev = queue_.top();
    queue_.pop();
    if (is_cancelled(ev.id)) continue;
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
  if (!stopped_ && now_ < horizon && horizon != kForever) now_ = horizon;
  return now_;
}

}  // namespace orte::sim
