// Time base for the OpenRTE discrete-event simulation.
//
// All simulated clocks use a signed 64-bit nanosecond count. Signed so that
// "t - now" arithmetic is safe near zero; 64 bits give ~292 years of range,
// far beyond any automotive mission time we simulate.
#pragma once

#include <cstdint>

namespace orte::sim {

/// Simulated time in nanoseconds since simulation start.
using Time = std::int64_t;

/// Duration in nanoseconds (same representation as Time).
using Duration = std::int64_t;

/// Sentinel for "never" / unbounded horizons.
inline constexpr Time kForever = INT64_MAX;

// Literal-style helpers. Integer-only on purpose: fractional microseconds are
// a common source of accumulated rounding drift in schedule tables.
constexpr Duration nanoseconds(std::int64_t v) { return v; }
constexpr Duration microseconds(std::int64_t v) { return v * 1'000; }
constexpr Duration milliseconds(std::int64_t v) { return v * 1'000'000; }
constexpr Duration seconds(std::int64_t v) { return v * 1'000'000'000; }

/// Convert to double milliseconds for reporting only (never for scheduling).
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }

}  // namespace orte::sim
