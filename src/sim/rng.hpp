// Deterministic random number generation for workload synthesis.
//
// xoshiro256** seeded via SplitMix64. We do not use std::mt19937 /
// std::uniform_int_distribution because their outputs are not guaranteed
// identical across standard libraries, and experiment reproducibility across
// toolchains matters more than statistical sophistication here.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace orte::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// True with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Pick a uniformly random index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(next_u64() % n);
  }

  /// Derive an independent child stream for `stream_id` WITHOUT advancing
  /// this generator: the child seed is a SplitMix64 finalization of the
  /// parent's current state mixed with the stream id (golden-ratio spread),
  /// so distinct stream ids yield decorrelated, collision-free streams.
  ///
  /// Determinism guarantee: fork() is a pure function of (parent state,
  /// stream_id). Two parents with identical state produce bit-identical
  /// children for the same id, regardless of when, in what order, or from
  /// which thread the forks happen — the property the fi campaign runner
  /// relies on to stay reproducible across worker-thread counts.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    std::uint64_t z = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                      rotl(state_[3], 43);
    z += (stream_id + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

  /// UUniFast: n utilization shares summing to `total` — the standard way to
  /// draw unbiased random task sets for schedulability experiments.
  std::vector<double> uunifast(std::size_t n, double total) {
    std::vector<double> u(n);
    double sum = total;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double next =
          sum * std::pow(next_double(), 1.0 / static_cast<double>(n - 1 - i));
      u[i] = sum - next;
      sum = next;
    }
    u[n - 1] = sum;
    return u;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace orte::sim
