// Discrete-event simulation kernel.
//
// The kernel owns a priority queue of timestamped events. Determinism is a
// hard requirement (experiments compare isolation-on vs isolation-off runs
// pairwise), so ties are broken by (time, priority, insertion sequence) —
// never by pointer values or hash order.
//
// The storage layer is built for cache residency (see DESIGN.md, "Kernel
// internals"):
//  * Events live once in a generation-tagged dense slot pool; the comparison
//    heap holds only 24-byte keys {when, order|slot, seq}. Cancellation is an
//    array write (no hashing), and stale handles — double-cancel,
//    cancel-after-fire, a handle whose slot was recycled — are rejected by
//    the generation tag.
//  * Occurrences due beyond the current ~65 µs time bucket are parked in a
//    256-bucket timer wheel and promoted into the heap only when simulated
//    time approaches, so a steady-state periodic workload (thousands of task
//    alarms) stops churning the comparison heap. Occurrences beyond the
//    wheel horizon or due in the current bucket go straight to the heap —
//    the wheel only defers *when* a key enters the heap, never changes the
//    (time, priority, sequence) pop order, so event ordering is bit-exact
//    with and without it.
//  * Periodic re-arm reuses the pooled action in place: no per-occurrence
//    closure, shared_ptr hop, or allocation.
//
// Time-travel policy: `schedule_at` (and `schedule_in` with a negative
// delay) THROWS std::invalid_argument when `when < now()`. Scheduling into
// the past is always an integration bug, and silently clamping it to now()
// would let the bug masquerade as a legitimate same-instant event and
// perturb deterministic runs; tests pin this behavior.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace orte::sim {

class Trace;

/// Handle used to cancel a scheduled event: {slot index, generation}. The
/// generation is bumped whenever the slot is freed (fire or cancel), so a
/// stale handle — even one whose slot has been recycled for a new event —
/// is rejected in O(1). Cancelling is an array write, no hashing.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return slot_ != kInvalidSlot; }

 private:
  friend class Kernel;
  static constexpr std::uint32_t kInvalidSlot = 0xFFFFFFFFu;
  EventHandle(std::uint32_t slot, std::uint32_t generation)
      : slot_(slot), generation_(generation) {}
  std::uint32_t slot_ = kInvalidSlot;
  std::uint32_t generation_ = 0;
};

/// Event priorities: lower value runs first among events at the same instant.
/// Hardware-ish activities (bus slot boundaries) run before software dispatch
/// so that, e.g., a frame arriving at time t is visible to a task released at
/// the same t.
enum class EventOrder : int {
  kHardware = 0,
  kKernel = 1,
  kDefault = 2,
  kSoftware = 3,
  kObserver = 4,
};

/// Kernel hot-path counters (perf diagnostics; see Kernel::counters()).
struct KernelCounters {
  std::uint64_t pushed = 0;        ///< Occurrences scheduled (wheel or heap).
  std::uint64_t popped = 0;        ///< Events removed (executed + dead).
  std::uint64_t executed = 0;      ///< Events whose action ran.
  std::uint64_t cancelled = 0;     ///< Effective cancel() calls.
  std::uint64_t skipped_dead = 0;  ///< Dead events purged at pop.
  std::uint64_t peak_queue_depth = 0;  ///< Peak of heap + wheel entries.
  std::uint64_t queue_depth = 0;       ///< Current heap + wheel entries.
  std::uint64_t wheel_scheduled = 0;   ///< Occurrences parked in the wheel.
  std::uint64_t wheel_flushed = 0;     ///< Entries promoted wheel -> heap.
  std::uint64_t pool_slots = 0;        ///< Current slot-pool capacity.
};

class Kernel {
 public:
  using Action = std::function<void()>;

  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `action` at absolute time `when`. Throws std::invalid_argument
  /// if `when < now()` — see the time-travel policy in the header comment.
  EventHandle schedule_at(Time when, Action action,
                          EventOrder order = EventOrder::kDefault);

  /// Schedule `action` after `delay` nanoseconds. A negative delay throws
  /// (it would target the past).
  EventHandle schedule_in(Duration delay, Action action,
                          EventOrder order = EventOrder::kDefault);

  /// Schedule `action` every `period` ns, first at `first`. Runs until the
  /// simulation horizon; handle cancels future occurrences.
  EventHandle schedule_periodic(Time first, Duration period, Action action,
                                EventOrder order = EventOrder::kDefault);

  /// Cancel a pending event; no-op if already fired, cancelled, or invalid.
  /// O(1): frees the slot and bumps its generation — the queued key is
  /// recognized as stale and purged when it surfaces.
  void cancel(EventHandle handle);

  /// Run until the event queue drains or `horizon` is passed; returns the
  /// final simulated time.
  Time run_until(Time horizon);

  /// Request the run loop to stop after the current event.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (diagnostics / perf counters).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Snapshot of the hot-path counters.
  [[nodiscard]] KernelCounters counters() const;

  /// Emit every counter as a trace record (category "kernel.<counter>").
  void trace_counters(Trace& trace, std::string_view subject = "kernel") const;

 private:
  /// 24-byte comparison-heap key. The action lives in the slot pool; the
  /// heap orders keys by (when, order, seq) exactly as the fat-Event heap
  /// did — `order_slot` packs the order class into the high 32 bits and the
  /// pool slot into the low 32, and the comparator looks only at the order
  /// half, so the tie-break semantics are unchanged.
  struct HeapItem {
    Time when = 0;
    std::uint64_t order_slot = 0;
    std::uint64_t seq = 0;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.when != b.when) return a.when > b.when;
      if ((a.order_slot >> 32) != (b.order_slot >> 32)) {
        return (a.order_slot >> 32) > (b.order_slot >> 32);
      }
      return a.seq > b.seq;
    }
  };

  /// One pooled event: the action (stored once, reused across periodic
  /// occurrences), the series period (0 = one-shot), and the liveness /
  /// staleness tags. `pending_seq` is the seq of the currently queued
  /// occurrence: a popped key whose seq differs is stale (cancelled slot, or
  /// slot recycled for a new event — seqs are never reused).
  struct Slot {
    Action action;
    Duration period = 0;
    std::uint64_t pending_seq = 0;
    std::uint32_t generation = 0;
    std::uint32_t order = 0;
    bool live = false;
  };

  // Timer wheel: 256 buckets of 2^16 ns (~65.5 µs) each — ~16.8 ms horizon,
  // covering the task/bus period range the workloads schedule at.
  static constexpr int kWheelShift = 16;
  static constexpr std::size_t kWheelBuckets = 256;

  std::priority_queue<HeapItem, std::vector<HeapItem>, Later> queue_;
  std::vector<Slot> pool_;
  std::vector<std::uint32_t> free_slots_;
  std::array<std::vector<HeapItem>, kWheelBuckets> wheel_;
  std::uint64_t wheel_count_ = 0;
  Time wheel_min_ = kForever;  ///< Earliest `when` parked in the wheel.

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  std::uint64_t cancelled_count_ = 0;
  std::uint64_t skipped_dead_ = 0;
  std::uint64_t peak_depth_ = 0;
  std::uint64_t wheel_scheduled_ = 0;
  std::uint64_t wheel_flushed_ = 0;
  bool stopped_ = false;

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  /// Assign the next seq and park the occurrence (wheel or heap).
  void push_occurrence(std::uint32_t slot, Time when, std::uint32_t order);
  /// Promote every wheel entry with when <= limit into the heap.
  void flush_wheel(Time limit);
  /// Re-derive wheel_min_ after draining the bucket at `drained_index`.
  void recompute_wheel_min(std::size_t drained_index);
};

}  // namespace orte::sim
