// Discrete-event simulation kernel.
//
// The kernel owns a priority queue of timestamped events. Determinism is a
// hard requirement (experiments compare isolation-on vs isolation-off runs
// pairwise), so ties are broken by (time, priority, insertion sequence) —
// never by pointer values or hash order. Cancellation is O(1) and leaves no
// residue: a cancelled id is purged the moment its dead event is popped, so
// long-running churn workloads stay linear in event count (see DESIGN.md,
// "Kernel internals").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace orte::sim {

class Trace;

/// Handle used to cancel a scheduled event. Cancelling is O(1): the event is
/// marked dead and skipped (and its bookkeeping purged) when popped.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Kernel;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Event priorities: lower value runs first among events at the same instant.
/// Hardware-ish activities (bus slot boundaries) run before software dispatch
/// so that, e.g., a frame arriving at time t is visible to a task released at
/// the same t.
enum class EventOrder : int {
  kHardware = 0,
  kKernel = 1,
  kDefault = 2,
  kSoftware = 3,
  kObserver = 4,
};

/// Kernel hot-path counters (perf diagnostics; see Kernel::counters()).
struct KernelCounters {
  std::uint64_t pushed = 0;        ///< Events entered into the queue.
  std::uint64_t popped = 0;        ///< Events removed (executed + dead).
  std::uint64_t executed = 0;      ///< Events whose action ran.
  std::uint64_t cancelled = 0;     ///< Effective cancel() calls.
  std::uint64_t skipped_dead = 0;  ///< Dead events purged at pop.
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t queue_depth = 0;   ///< Current depth.
};

class Kernel {
 public:
  using Action = std::function<void()>;

  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `action` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Time when, Action action,
                          EventOrder order = EventOrder::kDefault);

  /// Schedule `action` after `delay` nanoseconds.
  EventHandle schedule_in(Duration delay, Action action,
                          EventOrder order = EventOrder::kDefault);

  /// Schedule `action` every `period` ns, first at `first`. Runs until the
  /// simulation horizon; handle cancels future occurrences.
  EventHandle schedule_periodic(Time first, Duration period, Action action,
                                EventOrder order = EventOrder::kDefault);

  /// Cancel a pending event; no-op if already fired or invalid. O(1).
  void cancel(EventHandle handle);

  /// Run until the event queue drains or `horizon` is passed; returns the
  /// final simulated time.
  Time run_until(Time horizon);

  /// Request the run loop to stop after the current event.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (diagnostics / perf counters).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Snapshot of the hot-path counters.
  [[nodiscard]] KernelCounters counters() const;

  /// Emit every counter as a trace record (category "kernel.<counter>").
  void trace_counters(Trace& trace, std::string_view subject = "kernel") const;

 private:
  struct Event {
    Time when = 0;
    int order = 0;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.order != b.order) return a.order > b.order;
      return a.seq > b.seq;
    }
  };

  struct Periodic {
    Duration period = 0;
    int order = 0;
    std::shared_ptr<Action> payload;
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// id -> cancelled flag for every event currently in the queue. Each id
  /// appears at most once (a periodic has one pending occurrence at a time),
  /// so the entry is inserted at push and extracted at pop: memory is bounded
  /// by queue depth, and cancel/is-dead checks are O(1).
  std::unordered_map<std::uint64_t, bool> pending_;
  std::unordered_map<std::uint64_t, Periodic> periodics_;  ///< Live series.
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  std::uint64_t cancelled_count_ = 0;
  std::uint64_t skipped_dead_ = 0;
  std::uint64_t peak_depth_ = 0;
  bool stopped_ = false;

  void enqueue(Event ev);
  void push_periodic_occurrence(std::uint64_t id, Time when);
};

}  // namespace orte::sim
