// Structured event trace. Observers (tests, benches, runtime monitors)
// subscribe to the live stream; records are also retained for post-run
// queries when retention is on.
//
// Counting is O(log n) and allocation-free on the hot path: a
// category -> count index (and a (category, subject) -> count index) is
// maintained at emit time, so count() never scans the retained vector and
// stays correct even with retention disabled. When nothing observes the
// stream (no listeners, retention off) emit() skips building the record
// entirely — long unobserved runs pay only the two index bumps.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace orte::sim {

struct TraceRecord {
  Time when = 0;
  std::string category;  // e.g. "task.release", "can.tx", "budget.overrun"
  std::string subject;   // task/frame/node name
  std::int64_t value = 0;
  std::string detail;
};

class Trace {
 public:
  using Listener = std::function<void(const TraceRecord&)>;

  void enable_retention(bool on) { retain_ = on; }

  void emit(Time when, std::string_view category, std::string_view subject,
            std::int64_t value = 0, std::string_view detail = {}) {
    bump(category, subject);
    if (listeners_.empty() && !retain_) return;  // no-observer fast path
    TraceRecord rec{when, std::string(category), std::string(subject), value,
                    std::string(detail)};
    for (const auto& l : listeners_) l(rec);
    if (retain_) records_.push_back(std::move(rec));
  }

  void subscribe(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }

  /// Emissions in `category` since construction / the last clear(),
  /// independent of retention.
  [[nodiscard]] std::size_t count(std::string_view category) const {
    auto it = category_counts_.find(category);
    return it == category_counts_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::size_t count(std::string_view category,
                                  std::string_view subject) const {
    auto it = subject_counts_.find(std::pair{category, subject});
    return it == subject_counts_.end() ? 0 : it->second;
  }

  /// Every (subject, count) pair recorded under `category`, in subject
  /// order. Incremental consumers (isolation::ContainmentMonitor, rv
  /// monitors) classify from this index instead of re-scanning records.
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>>
  subject_counts(std::string_view category) const {
    std::vector<std::pair<std::string, std::size_t>> out;
    for (auto it = subject_counts_.lower_bound(
             std::pair{category, std::string_view{}});
         it != subject_counts_.end() && it->first.first == category; ++it) {
      out.emplace_back(it->first.second, it->second);
    }
    return out;
  }

  /// Drops retained records AND resets the count indexes (counts always
  /// describe the same window as records() when retention is on).
  void clear() {
    records_.clear();
    category_counts_.clear();
    subject_counts_.clear();
  }

 private:
  /// Transparent comparator for (category, subject) pair keys so lookups
  /// work on string_view pairs without allocating.
  struct PairLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    }
  };

  void bump(std::string_view category, std::string_view subject) {
    auto cit = category_counts_.find(category);
    if (cit == category_counts_.end()) {
      category_counts_.emplace(std::string(category), 1);
    } else {
      ++cit->second;
    }
    auto sit = subject_counts_.find(std::pair{category, subject});
    if (sit == subject_counts_.end()) {
      subject_counts_.emplace(
          std::pair{std::string(category), std::string(subject)}, 1);
    } else {
      ++sit->second;
    }
  }

  std::vector<Listener> listeners_;
  std::vector<TraceRecord> records_;
  std::map<std::string, std::size_t, std::less<>> category_counts_;
  std::map<std::pair<std::string, std::string>, std::size_t, PairLess>
      subject_counts_;
  bool retain_ = true;
};

}  // namespace orte::sim
