// Structured event trace. Observers (tests, benches) subscribe to categories;
// records are also retained for post-run queries.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace orte::sim {

struct TraceRecord {
  Time when = 0;
  std::string category;  // e.g. "task.release", "can.tx", "budget.overrun"
  std::string subject;   // task/frame/node name
  std::int64_t value = 0;
  std::string detail;
};

class Trace {
 public:
  using Listener = std::function<void(const TraceRecord&)>;

  void enable_retention(bool on) { retain_ = on; }

  void emit(Time when, std::string_view category, std::string_view subject,
            std::int64_t value = 0, std::string_view detail = {}) {
    TraceRecord rec{when, std::string(category), std::string(subject), value,
                    std::string(detail)};
    for (const auto& l : listeners_) l(rec);
    if (retain_) records_.push_back(std::move(rec));
  }

  void subscribe(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }

  [[nodiscard]] std::size_t count(std::string_view category) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (r.category == category) ++n;
    }
    return n;
  }

  [[nodiscard]] std::size_t count(std::string_view category,
                                  std::string_view subject) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (r.category == category && r.subject == subject) ++n;
    }
    return n;
  }

  void clear() { records_.clear(); }

 private:
  std::vector<Listener> listeners_;
  std::vector<TraceRecord> records_;
  bool retain_ = true;
};

}  // namespace orte::sim
