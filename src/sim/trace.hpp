// Structured event trace. Observers (tests, benches, runtime monitors)
// subscribe to the live stream; records are also retained for post-run
// queries when retention is on.
//
// Category and subject strings are interned into dense integer TraceIds at
// first sight, so the hot path is allocation-free and O(1): emit() resolves
// both IDs with one transparent hash lookup each (no std::string
// construction), bumps a flat per-category vector and a single
// (category, subject)-keyed hash cell, and only builds a TraceRecord when
// somebody observes the stream (listeners or retention). Records carry the
// IDs alongside the strings so downstream consumers (rv::MonitorRegistry,
// isolation::ContainmentMonitor) route and compare integers, never strings.
// IDs are stable for the lifetime of the Trace — clear() resets counts and
// records but keeps the intern tables.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace orte::sim {

/// Dense intern ID for a trace category or subject string. IDs are
/// per-Trace, assigned in first-sight order, and never recycled.
using TraceId = std::uint32_t;

/// "Not interned (yet)" — returned by the const lookups for unseen names.
inline constexpr TraceId kNoTraceId = 0xFFFFFFFFu;

struct TraceRecord {
  Time when = 0;
  std::string category;  // e.g. "task.release", "can.tx", "budget.overrun"
  std::string subject;   // task/frame/node name
  std::int64_t value = 0;
  std::string detail;
  TraceId category_id = kNoTraceId;  ///< Intern ID of `category`.
  TraceId subject_id = kNoTraceId;   ///< Intern ID of `subject`.
};

/// Allocation-free view of one emission, delivered to ID listeners
/// (subscribe_ids). Carries the interned IDs instead of the name strings —
/// consumers that route on TraceIds (rv::MonitorRegistry) never pay a string
/// assignment; names are recoverable through Trace::category_name /
/// subject_name when a cold path (violation reporting) needs them. `detail`
/// views the emitter's buffer and is only valid during the callback.
struct TraceEvent {
  Time when = 0;
  TraceId category_id = kNoTraceId;
  TraceId subject_id = kNoTraceId;
  std::int64_t value = 0;
  std::string_view detail;
};

class Trace {
 public:
  using Listener = std::function<void(const TraceRecord&)>;
  using IdListener = std::function<void(const TraceEvent&)>;

  void enable_retention(bool on) { retain_ = on; }

  void emit(Time when, std::string_view category, std::string_view subject,
            std::int64_t value = 0, std::string_view detail = {}) {
    const TraceId cat = categories_.intern(category);
    const TraceId subj = subjects_.intern(subject);
    bump(cat, subj);
    // ID listeners run first, before any record is materialized: when every
    // observer routes on TraceIds (the rv-bound configuration) and retention
    // is off, an emit costs two intern lookups, the count bumps, and this
    // loop — no string is assigned or copied anywhere.
    if (!id_listeners_.empty()) {
      const TraceEvent ev{when, cat, subj, value, detail};
      for (const auto& l : id_listeners_) l(ev);
    }
    if (!retain_) {
      records_complete_ = false;
      if (listeners_.empty()) return;  // no string observer: done
      // Listener-only path: notify through a reused scratch record — the
      // string assignments reuse capacity, so a warmed-up monitored run
      // emits with zero allocations.
      scratch_.when = when;
      scratch_.category.assign(category);
      scratch_.subject.assign(subject);
      scratch_.value = value;
      scratch_.detail.assign(detail);
      scratch_.category_id = cat;
      scratch_.subject_id = subj;
      for (const auto& l : listeners_) l(scratch_);
      return;
    }
    TraceRecord rec{when,  std::string(category), std::string(subject),
                    value, std::string(detail),   cat,
                    subj};
    for (const auto& l : listeners_) l(rec);
    records_.push_back(std::move(rec));
  }

  void subscribe(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Subscribe an ID-only listener: it receives a TraceEvent (interned IDs,
  /// no name strings) for every emission, before the string listeners run.
  /// This is the fan-out fast path for routers that compare TraceIds.
  void subscribe_ids(IdListener listener) {
    id_listeners_.push_back(std::move(listener));
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }

  // --- Interning ------------------------------------------------------------

  /// Intern a name ahead of its first emission (observers pre-register the
  /// IDs they will route on, e.g. rv::MonitorRegistry at attach() time).
  TraceId intern_category(std::string_view category) {
    return categories_.intern(category);
  }
  TraceId intern_subject(std::string_view subject) {
    return subjects_.intern(subject);
  }

  /// ID of a name if it has been seen/interned, kNoTraceId otherwise.
  [[nodiscard]] TraceId category_id(std::string_view category) const {
    return categories_.find(category);
  }
  [[nodiscard]] TraceId subject_id(std::string_view subject) const {
    return subjects_.find(subject);
  }

  /// Reverse lookup; empty view for unknown IDs.
  [[nodiscard]] std::string_view category_name(TraceId id) const {
    return categories_.name(id);
  }
  [[nodiscard]] std::string_view subject_name(TraceId id) const {
    return subjects_.name(id);
  }

  // --- Counting -------------------------------------------------------------

  /// Emissions in `category` since construction / the last clear(),
  /// independent of retention.
  [[nodiscard]] std::size_t count(std::string_view category) const {
    return count(categories_.find(category));
  }

  [[nodiscard]] std::size_t count(std::string_view category,
                                  std::string_view subject) const {
    return count(categories_.find(category), subjects_.find(subject));
  }

  [[nodiscard]] std::size_t count(TraceId category) const {
    return category < category_counts_.size() ? category_counts_[category]
                                              : 0;
  }

  [[nodiscard]] std::size_t count(TraceId category, TraceId subject) const {
    if (category == kNoTraceId || subject == kNoTraceId) return 0;
    auto it = pair_counts_.find(pair_key(category, subject));
    return it == pair_counts_.end() ? 0 : it->second;
  }

  /// Every (subject, count) pair recorded under `category`, in subject
  /// order. Incremental consumers (isolation::ContainmentMonitor, rv
  /// monitors) classify from this index instead of re-scanning records.
  /// O(subjects-in-category): each category keeps its own bucket of seen
  /// subject IDs, so the query never walks the whole (category, subject)
  /// map.
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>>
  subject_counts(std::string_view category) const {
    std::vector<std::pair<std::string, std::size_t>> out;
    const TraceId cat = categories_.find(category);
    if (cat == kNoTraceId || cat >= category_subjects_.size()) return out;
    out.reserve(category_subjects_[cat].size());
    for (const TraceId subj : category_subjects_[cat]) {
      out.emplace_back(std::string(subjects_.name(subj)),
                       pair_counts_.at(pair_key(cat, subj)));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// ID-keyed variant of subject_counts() (unordered): every
  /// (subject_id, count) pair recorded under the category ID, in
  /// O(subjects-in-category).
  [[nodiscard]] std::vector<std::pair<TraceId, std::size_t>>
  subject_counts_by_id(TraceId category) const {
    std::vector<std::pair<TraceId, std::size_t>> out;
    if (category == kNoTraceId || category >= category_subjects_.size()) {
      return out;
    }
    out.reserve(category_subjects_[category].size());
    for (const TraceId subj : category_subjects_[category]) {
      out.emplace_back(subj, pair_counts_.at(pair_key(category, subj)));
    }
    return out;
  }

  /// Drops retained records AND resets the count indexes (counts always
  /// describe the same window as records() when retention is on). Intern
  /// IDs survive: a (category, subject) keeps its IDs across clear(), so
  /// observers holding resolved IDs stay valid.
  void clear() {
    // Guard against silent index drift: whenever the retained records are
    // a complete history of the window, the ID-indexed counts must agree
    // with a string-keyed recount of them.
    assert(!records_complete_ || counts_match_records());
    records_.clear();
    category_counts_.assign(category_counts_.size(), 0);
    pair_counts_.clear();
    for (auto& bucket : category_subjects_) bucket.clear();
    records_complete_ = true;
  }

  /// Consistency test hook: recount the retained records by their strings
  /// and compare against the ID-indexed counts. Only meaningful when
  /// retention has been on since construction / the last clear() (otherwise
  /// counts legitimately exceed the recount); callers can check
  /// records_complete() first. Used by the debug assertion in clear() and
  /// by the index-drift regression tests.
  [[nodiscard]] bool counts_match_records() const {
    std::unordered_map<std::uint64_t, std::size_t> pair_recount;
    std::vector<std::size_t> cat_recount(category_counts_.size(), 0);
    for (const auto& rec : records_) {
      const TraceId cat = categories_.find(rec.category);
      const TraceId subj = subjects_.find(rec.subject);
      if (cat == kNoTraceId || subj == kNoTraceId) return false;
      if (cat != rec.category_id || subj != rec.subject_id) return false;
      if (cat >= cat_recount.size()) return false;
      ++cat_recount[cat];
      ++pair_recount[pair_key(cat, subj)];
    }
    if (cat_recount != category_counts_ || pair_recount != pair_counts_) {
      return false;
    }
    // The per-category subject buckets must mirror the pair index exactly:
    // every bucketed subject has a pair cell, and nothing is missing.
    std::size_t bucket_entries = 0;
    for (TraceId cat = 0; cat < category_subjects_.size(); ++cat) {
      for (const TraceId subj : category_subjects_[cat]) {
        ++bucket_entries;
        if (pair_counts_.find(pair_key(cat, subj)) == pair_counts_.end()) {
          return false;
        }
      }
    }
    return bucket_entries == pair_counts_.size();
  }

  /// True while the retained records cover every emission since
  /// construction / the last clear() (retention never off during an emit).
  [[nodiscard]] bool records_complete() const { return records_complete_; }

 private:
  /// String -> dense ID table with stable IDs and O(1) transparent lookup
  /// (no std::string built for a hit). Name storage lives in the map nodes,
  /// which are pointer-stable across rehash and move.
  class Interner {
   public:
    TraceId intern(std::string_view name) {
      auto it = ids_.find(name);
      if (it != ids_.end()) return it->second;
      const TraceId id = static_cast<TraceId>(names_.size());
      it = ids_.emplace(std::string(name), id).first;
      names_.push_back(it->first);
      return id;
    }
    [[nodiscard]] TraceId find(std::string_view name) const {
      auto it = ids_.find(name);
      return it == ids_.end() ? kNoTraceId : it->second;
    }
    [[nodiscard]] std::string_view name(TraceId id) const {
      return id < names_.size() ? names_[id] : std::string_view{};
    }

   private:
    struct Hash {
      using is_transparent = void;
      std::size_t operator()(std::string_view s) const noexcept {
        return std::hash<std::string_view>{}(s);
      }
    };
    std::unordered_map<std::string, TraceId, Hash, std::equal_to<>> ids_;
    std::vector<std::string_view> names_;  ///< Views into ids_ keys.
  };

  static constexpr std::uint64_t pair_key(TraceId category, TraceId subject) {
    return (static_cast<std::uint64_t>(category) << 32) | subject;
  }

  // Single-lookup bump per index (operator[] value-initializes on miss) —
  // no find-then-emplace double walk, no key strings. A pair's first bump
  // also files the subject into the category's subject bucket, keeping the
  // subject_counts() queries O(subjects-in-category).
  void bump(TraceId category, TraceId subject) {
    if (category >= category_counts_.size()) {
      category_counts_.resize(category + 1, 0);
      category_subjects_.resize(category + 1);
    }
    ++category_counts_[category];
    auto& n = pair_counts_[pair_key(category, subject)];
    if (n == 0) category_subjects_[category].push_back(subject);
    ++n;
  }

  std::vector<Listener> listeners_;
  std::vector<IdListener> id_listeners_;
  std::vector<TraceRecord> records_;
  TraceRecord scratch_;  ///< Reused for listener-only (no-retention) emits.
  Interner categories_;
  Interner subjects_;
  std::vector<std::size_t> category_counts_;  ///< Indexed by category ID.
  /// Subject IDs seen per category (first-bump order) — the iteration set
  /// of subject_counts(); pair_counts_ keeps the numbers.
  std::vector<std::vector<TraceId>> category_subjects_;
  std::unordered_map<std::uint64_t, std::size_t> pair_counts_;
  bool retain_ = true;
  bool records_complete_ = true;
};

}  // namespace orte::sim
