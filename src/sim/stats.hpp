// Sample accumulator for experiment reporting: min/max/mean/stddev/percentile.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace orte::sim {

class Stats {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double min() const {
    require_samples();
    return *std::min_element(samples_.begin(), samples_.end());
  }
  [[nodiscard]] double max() const {
    require_samples();
    return *std::max_element(samples_.begin(), samples_.end());
  }
  [[nodiscard]] double mean() const {
    require_samples();
    double s = 0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }
  [[nodiscard]] double stddev() const {
    require_samples();
    const double m = mean();
    double s = 0;
    for (double v : samples_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size()));
  }
  /// p in [0, 100]; nearest-rank on the sorted samples. Throws
  /// std::invalid_argument outside that range (a silent clamp used to hide
  /// caller bugs as "the max sample").
  [[nodiscard]] double percentile(double p) const {
    if (!(p >= 0.0 && p <= 100.0)) {  // also rejects NaN
      throw std::invalid_argument("Stats::percentile: p outside [0, 100]");
    }
    require_samples();
    if (!sorted_) {
      sorted_samples_ = samples_;
      std::sort(sorted_samples_.begin(), sorted_samples_.end());
      sorted_ = true;
    }
    const auto n = sorted_samples_.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank > 0) --rank;
    if (rank >= n) rank = n - 1;
    return sorted_samples_[rank];
  }
  /// max - min: the jitter metric used throughout the experiments.
  [[nodiscard]] double spread() const { return max() - min(); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void require_samples() const {
    if (samples_.empty()) throw std::logic_error("Stats: no samples");
  }
  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

}  // namespace orte::sim
