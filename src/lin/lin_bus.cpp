#include "lin/lin_bus.hpp"

#include <stdexcept>

namespace orte::lin {

namespace {
constexpr std::uint8_t kMaxFrameId = 63;
// Break + sync + protected identifier: 34 bit times nominal.
constexpr std::int64_t kHeaderBits = 34;
}  // namespace

void LinNode::send(Frame frame) {
  if (frame.id > kMaxFrameId) {
    throw std::invalid_argument("LIN frame id exceeds 63");
  }
  if (frame.size() == 0 || frame.size() > 8) {
    throw std::invalid_argument("LIN response must be 1..8 bytes");
  }
  frame.source = index_;
  bus_->store_response(index_, std::move(frame));
}

LinBus::LinBus(sim::Kernel& kernel, sim::Trace& trace, LinConfig cfg)
    : kernel_(kernel),
      trace_(trace),
      cfg_(std::move(cfg)),
      bit_time_(1'000'000'000 / cfg_.bitrate_bps),
      responses_(kMaxFrameId + 1),
      rng_(cfg_.seed) {
  if (cfg_.bitrate_bps <= 0) {
    throw std::invalid_argument("LIN bitrate must be positive");
  }
}

LinNode& LinBus::attach(std::string name) {
  if (started_) throw std::logic_error("LinBus::attach after start()");
  const int index = static_cast<int>(nodes_.size());
  nodes_.push_back(
      std::unique_ptr<LinNode>(new LinNode(*this, index, std::move(name))));
  return *nodes_.back();
}

void LinBus::set_schedule(std::vector<LinScheduleEntry> schedule) {
  for (const auto& e : schedule) {
    if (e.frame_id > kMaxFrameId) {
      throw std::invalid_argument("schedule entry id exceeds 63");
    }
    if (e.bytes == 0 || e.bytes > 8) {
      throw std::invalid_argument("schedule entry response must be 1..8 B");
    }
  }
  schedule_ = std::move(schedule);
}

Duration LinBus::frame_time(std::size_t bytes) const {
  // Response: each byte is 10 bits (start+8+stop) plus the checksum byte.
  return (kHeaderBits +
          10 * (static_cast<std::int64_t>(bytes) + 1)) *
         bit_time_;
}

Duration LinBus::slot_time(const LinScheduleEntry& e) const {
  if (e.slot > 0) return e.slot;
  return frame_time(e.bytes) * 14 / 10;  // LIN's 1.4x duration budget
}

Duration LinBus::cycle_time() const {
  Duration t = 0;
  for (const auto& e : schedule_) t += slot_time(e);
  return t;
}

void LinBus::start() {
  if (started_) throw std::logic_error("LinBus::start called twice");
  if (nodes_.empty()) throw std::logic_error("LinBus needs a master node");
  if (schedule_.empty()) throw std::logic_error("LinBus schedule is empty");
  for (const auto& e : schedule_) {
    if (e.publisher < 0 || e.publisher >= static_cast<int>(nodes_.size())) {
      throw std::logic_error("schedule entry publisher out of range");
    }
  }
  started_ = true;
  kernel_.schedule_at(kernel_.now(), [this] { run_slot(0); },
                      sim::EventOrder::kHardware);
}

void LinBus::store_response(int node, Frame frame) {
  // A node may only publish ids the schedule assigns to it.
  for (const auto& e : schedule_) {
    if (e.frame_id == frame.id && e.publisher == node) {
      responses_[frame.id] = std::move(frame);
      return;
    }
  }
  throw std::logic_error("node publishes a LIN id it does not own");
}

void LinBus::run_slot(std::size_t index) {
  const LinScheduleEntry& entry = schedule_[index];
  const Time slot_start = kernel_.now();
  const Time slot_end = slot_start + slot_time(entry);
  const Time frame_end = slot_start + frame_time(entry.bytes);

  LinNode& publisher = *nodes_[static_cast<std::size_t>(entry.publisher)];
  const bool alive = slot_start < publisher.crash_time_;
  // The response is latched when its transmission completes, so data
  // published during the header/response window still catches this slot.
  kernel_.schedule_at(
      frame_end,
      [this, alive, slot_start, id = entry.frame_id,
       publisher_index = entry.publisher] {
        if (!alive || !responses_[id].has_value()) {
          // Header went out, nobody answered: a detectable no-response slot.
          ++no_responses_;
          trace_.emit(kernel_.now(), "lin.no_response",
                      nodes_[static_cast<std::size_t>(publisher_index)]->name(),
                      id);
          return;
        }
        // State semantics: the publisher answers every poll with its latest
        // value (the buffer is latched, not consumed).
        Frame frame = *responses_[id];
        frame.sent_at = slot_start;
        frame.delivered_at = kernel_.now();
        const bool corrupted = cfg_.checksum_error_rate > 0 &&
                               rng_.chance(cfg_.checksum_error_rate);
        stats_.record_tx(frame.sent_at, kernel_.now(), !corrupted);
        if (corrupted) {
          ++checksum_errors_;
          trace_.emit(kernel_.now(), "lin.checksum_error", frame.name,
                      frame.id);
          return;  // subscribers reject the frame
        }
        trace_.emit(kernel_.now(), "lin.rx", frame.name, frame.id);
        for (const auto& n : nodes_) {
          if (n->index() != frame.source) n->deliver(frame);
        }
      },
      sim::EventOrder::kHardware);
  kernel_.schedule_at(slot_end,
                      [this, next = (index + 1) % schedule_.size()] {
                        run_slot(next);
                      },
                      sim::EventOrder::kHardware);
}

}  // namespace orte::lin
