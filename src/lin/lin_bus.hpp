// LIN 2.x bus simulator (master/slave, schedule-table driven).
//
// The body-domain sub-bus under Figure 1's "Bus systems": a single master
// polls a static schedule table; each entry names a frame identifier whose
// *publisher* (master or one slave) answers with a response. Time-triggered
// by construction — the LIN schedule is the low-cost cousin of the FlexRay
// static segment, with the same composability property: frame timing is
// fixed by the table, not by node behaviour. Faults: a silent publisher
// produces a no-response slot (detected and counted); checksum corruption
// can be injected per-frame.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/bus_stats.hpp"
#include "net/frame.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace orte::lin {

using net::Frame;
using sim::Duration;
using sim::Time;

class LinBus;

class LinNode : public net::Controller {
 public:
  /// Store the response payload for a frame id this node publishes
  /// (overwrite semantics; transmitted when the master polls the id).
  void send(Frame frame) override;

  /// Fail-silent from `t` on: polled slots go unanswered.
  void crash_at(Time t) { crash_time_ = t; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int index() const { return index_; }

 private:
  friend class LinBus;
  LinNode(LinBus& bus, int index, std::string name)
      : bus_(&bus), index_(index), name_(std::move(name)) {}
  void deliver(const Frame& f) { notify_receive(f); }

  LinBus* bus_;
  int index_;
  std::string name_;
  Time crash_time_ = sim::kForever;
};

struct LinScheduleEntry {
  std::uint8_t frame_id = 0;  ///< 0..63.
  int publisher = 0;          ///< Node index answering the header.
  std::size_t bytes = 8;      ///< Response payload length (1..8).
  /// Slot duration; 0 = auto (140% of nominal frame time, per LIN spec).
  Duration slot = 0;
};

struct LinConfig {
  std::string name = "lin0";
  std::int64_t bitrate_bps = 19'200;
  double checksum_error_rate = 0.0;  ///< Per-response corruption probability.
  std::uint64_t seed = 1;
};

class LinBus {
 public:
  LinBus(sim::Kernel& kernel, sim::Trace& trace, LinConfig cfg);
  LinBus(const LinBus&) = delete;
  LinBus& operator=(const LinBus&) = delete;

  /// Node 0 is the master by convention (owns the schedule).
  LinNode& attach(std::string name);
  void set_schedule(std::vector<LinScheduleEntry> schedule);
  void start();

  /// Nominal on-wire time: header (34 bits) + response (10*(n+1) bits).
  [[nodiscard]] Duration frame_time(std::size_t bytes) const;
  /// Slot duration for an entry (140% of nominal unless overridden).
  [[nodiscard]] Duration slot_time(const LinScheduleEntry& e) const;
  /// One full rotation of the schedule table.
  [[nodiscard]] Duration cycle_time() const;

  [[nodiscard]] const net::BusStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t no_responses() const { return no_responses_; }
  [[nodiscard]] std::uint64_t checksum_errors() const {
    return checksum_errors_;
  }

 private:
  friend class LinNode;

  void run_slot(std::size_t index);
  void store_response(int node, Frame frame);

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  LinConfig cfg_;
  Duration bit_time_;
  std::vector<std::unique_ptr<LinNode>> nodes_;
  std::vector<LinScheduleEntry> schedule_;
  /// Response buffer per frame id (published data waiting for the poll).
  std::vector<std::optional<Frame>> responses_;
  net::BusStats stats_;
  sim::Rng rng_;
  std::uint64_t no_responses_ = 0;
  std::uint64_t checksum_errors_ = 0;
  bool started_ = false;
};

}  // namespace orte::lin
