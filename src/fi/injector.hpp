// Fault installation: compiles declarative fi::Faults onto a generated
// vfb::System through the injection hook points each layer exposes:
//  * bus faults    -> net::FaultHook on the CAN/FlexRay bus (frame drop,
//                     payload corruption, delay, clock-drift arrival skew)
//                     plus an extra rogue controller for the babbling idiot,
//  * value faults  -> the RTE write interceptor (corrupt/stuck-at/swallow),
//  * task faults   -> os::Task::transform_durations, delegating to the
//                     isolation-layer WCET fault helpers so the fi layer and
//                     the standalone isolation experiments share one timing
//                     fault semantics (overrunning/jittery/crashing_wcet).
//
// Install between System construction and the first run_for(): FlexRay
// forbids attaching nodes after start(), and duration transforms must be in
// place before the first activation.
#pragma once

#include <vector>

#include "fi/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "vfb/system.hpp"

namespace orte::fi {

/// Install every fault onto `sys`. Stochastic decisions (probability < 1,
/// execution jitter) draw from per-fault streams forked off `root`, so two
/// scenarios with the same (faults, root) replay bit-identically no matter
/// what else runs in the process.
void install_faults(sim::Kernel& kernel, vfb::System& sys,
                    const std::vector<Fault>& faults, const sim::Rng& root);

}  // namespace orte::fi
