#include "fi/workloads.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "contracts/contract.hpp"
#include "sim/time.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"

namespace orte::fi::workloads {

ModelBundle brake_by_wire(bool alive_supervision) {
  ModelBundle bundle;
  vfb::Composition& model = bundle.model;

  vfb::PortInterface ibrake;
  ibrake.name = "IBrake";
  ibrake.elements.push_back(vfb::DataElement{"pos", 16, 0, false});
  model.add_interface(ibrake);

  // Pedal sensor: samples a deterministic in-range pedal trajectory every
  // 5 ms. The counter is created per bundle, so concurrent scenarios never
  // share state.
  vfb::Runnable sample;
  sample.name = "sample";
  sample.trigger = vfb::RunnableTrigger::timing(sim::milliseconds(5));
  sample.execution_time = [] { return sim::microseconds(100); };
  sample.accesses.push_back(
      {"out", "pos", vfb::DataAccessKind::kExplicitWrite});
  sample.behavior = [n = std::make_shared<std::uint64_t>(0)](
                        vfb::RunnableContext& ctx) {
    ctx.write("out", "pos", (*n)++ * 37 % 1001);
  };
  model.add_type({"PedalSensor",
                  {vfb::Port{"out", "IBrake", vfb::PortDirection::kProvided}},
                  {sample}});

  vfb::Runnable control;
  control.name = "control";
  control.trigger = vfb::RunnableTrigger::data_received("in", "pos");
  control.execution_time = [] { return sim::microseconds(200); };
  control.accesses.push_back(
      {"in", "pos", vfb::DataAccessKind::kExplicitRead});
  control.behavior = [](vfb::RunnableContext& ctx) {
    (void)ctx.read("in", "pos");
  };
  model.add_type({"WheelActuator",
                  {vfb::Port{"in", "IBrake", vfb::PortDirection::kRequired}},
                  {control}});

  model.add_instance({"pedal", "PedalSensor"});
  const std::vector<std::string> wheels = {"wheel_fl", "wheel_fr", "wheel_rl",
                                           "wheel_rr"};
  for (const auto& w : wheels) {
    model.add_instance({w, "WheelActuator"});
    model.add_connector({"pedal", "out", w, "in"});
  }

  // Contracts on all four monitor planes (see header).
  contracts::Contract pedal_contract;
  pedal_contract.name = "C_Pedal";
  pedal_contract.guarantees.push_back(
      {.flow = "out.pos",
       .range = {0, 1000},
       .timing = {.period = sim::milliseconds(5),
                  .latency = sim::milliseconds(2)}});
  model.bind_contract("pedal", pedal_contract);

  for (const auto& w : wheels) {
    contracts::Contract wheel_contract;
    wheel_contract.name = "C_" + w;
    wheel_contract.assumptions.push_back(
        {.flow = "in.pos",
         .range = {0, 1000},
         .timing = {.latency = sim::milliseconds(2)}});
    model.bind_contract(w, wheel_contract);
  }

  vfb::DeploymentPlan& plan = bundle.plan;
  plan.bus = vfb::BusKind::kFlexRay;
  plan.instances["pedal"] = {.ecu = "pedal_ecu"};
  plan.instances["wheel_fl"] = {.ecu = "fl_ecu"};
  plan.instances["wheel_fr"] = {.ecu = "fr_ecu"};
  plan.instances["wheel_rl"] = {.ecu = "rl_ecu"};
  plan.instances["wheel_rr"] = {.ecu = "rr_ecu"};
  plan.recovery_mode = "RUN";
  plan.alive_supervision = alive_supervision;
  return bundle;
}

std::vector<Fault> standard_faults() {
  return {
      {.kind = FaultKind::kFrameDrop, .probability = 0.4},
      {.kind = FaultKind::kFrameCorrupt, .probability = 0.6, .value = 0x40},
      {.kind = FaultKind::kBabblingIdiot},
      {.kind = FaultKind::kStuckAt, .target = "pedal.out.pos", .value = 4000},
      {.kind = FaultKind::kValueCorrupt,
       .target = "pedal.out.pos",
       .probability = 0.5,
       .value = 0xF000},
      {.kind = FaultKind::kWcetOverrun, .target = "pedal", .magnitude = 80.0},
      {.kind = FaultKind::kExecutionJitter,
       .target = "pedal",
       .magnitude = 0.9},
      {.kind = FaultKind::kClockDrift,
       .target = "pedal_ecu",
       .magnitude = 50000.0},
  };
}

void add_standard_faults(Campaign& campaign) {
  for (auto& fault : standard_faults()) campaign.add_fault(std::move(fault));
}

}  // namespace orte::fi::workloads
