#include "fi/fault.hpp"

namespace orte::fi {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFrameDrop:
      return "frame_drop";
    case FaultKind::kFrameCorrupt:
      return "frame_corrupt";
    case FaultKind::kFrameDelay:
      return "frame_delay";
    case FaultKind::kBabblingIdiot:
      return "babbling_idiot";
    case FaultKind::kValueCorrupt:
      return "value_corrupt";
    case FaultKind::kStuckAt:
      return "stuck_at";
    case FaultKind::kTaskCrash:
      return "task_crash";
    case FaultKind::kWcetOverrun:
      return "wcet_overrun";
    case FaultKind::kExecutionJitter:
      return "execution_jitter";
    case FaultKind::kClockDrift:
      return "clock_drift";
  }
  return "unknown";
}

std::string_view to_string(FaultClass cls) {
  switch (cls) {
    case FaultClass::kBus:
      return "bus";
    case FaultClass::kRteValue:
      return "rte_value";
    case FaultClass::kTiming:
      return "timing";
    case FaultClass::kClock:
      return "clock";
  }
  return "unknown";
}

std::string Fault::label() const {
  std::string out{to_string(kind)};
  if (!target.empty()) {
    out.push_back(':');
    out += target;
  }
  return out;
}

}  // namespace orte::fi
