// Declarative fault catalog for the injection campaigns (experiment E9b).
//
// A fi::Fault names WHAT breaks (kind), WHERE (target, semantics per kind),
// WHEN (onset window [from, until)) and HOW HARD (probability / magnitude /
// value / delay). Faults are plain data: the injector compiles them onto a
// built vfb::System through the hook points each layer exposes (net fault
// hooks, the RTE write interceptor, os::Task::transform_durations), and the
// campaign runner replays the same Fault under per-scenario RNG streams —
// the declarative form is what makes a grid of scenarios enumerable and a
// coverage matrix (fault class x detector) meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace orte::fi {

/// The injectable fault kinds, grouped into the four classes the coverage
/// matrix scores. Target semantics per kind:
///  * frame faults (drop/corrupt/delay): substring of the frame name,
///    "" = every frame on the bus,
///  * babbling idiot: the bus itself (target unused); a rogue node is
///    attached that floods high-priority frames,
///  * value faults (corrupt/stuck-at): an RTE sender key
///    ("instance.port.element") or an instance-name prefix,
///  * task faults (crash/overrun/jitter): a component instance name,
///  * clock drift: an ECU name (all frames sourced by its bus node drift).
enum class FaultKind {
  // -- bus plane (class kBus) --
  kFrameDrop,      ///< Lose matching frames at the delivery point.
  kFrameCorrupt,   ///< XOR every payload byte with `value`'s low byte.
  kFrameDelay,     ///< Add `delay` ns (CAN only; TDMA buses pin timing).
  kBabblingIdiot,  ///< Rogue node floods top-priority frames every `delay`.
  // -- RTE value plane (class kRteValue) --
  kValueCorrupt,  ///< XOR the written value with `value` (default all-ones).
  kStuckAt,       ///< Every matching write publishes `value` instead.
  // -- task timing plane (class kTiming) --
  kTaskCrash,        ///< Fail-silent from `from` on: zero execution time and
                     ///< swallowed port writes (until is ignored: crashes
                     ///< are permanent, like isolation::crashing_wcet).
  kWcetOverrun,      ///< Execution time x `magnitude` inside the window.
  kExecutionJitter,  ///< Execution time scaled by U[1-magnitude, 1] inside
                     ///< the window (magnitude in [0, 1]).
  // -- clock plane (class kClock) --
  kClockDrift,  ///< The ECU's clock drifts `magnitude` ppm from `from` on:
                ///< its CAN frames arrive late by the accumulated offset;
                ///< on TDMA buses its frames are lost once the offset
                ///< exceeds half a static slot (desynchronization).
};

/// Row axis of the coverage matrix.
enum class FaultClass { kBus, kRteValue, kTiming, kClock };

struct Fault {
  FaultKind kind = FaultKind::kFrameDrop;
  std::string target;
  /// Onset window [from, until). A `from` of 0 means "at the campaign's
  /// configured onset" when the fault runs under a fi::Campaign.
  sim::Time from = 0;
  sim::Time until = sim::kForever;
  /// Per-opportunity firing probability (frame faults, value faults).
  double probability = 1.0;
  /// Kind-specific intensity: overrun factor, jitter fraction, drift ppm.
  double magnitude = 2.0;
  /// Kind-specific value: stuck-at value, corruption XOR mask (0 = all-ones
  /// for value corruption, low byte 0xFF for frame corruption), babble
  /// frame id (0 = top priority).
  std::uint64_t value = 0;
  /// kFrameDelay: added latency; kBabblingIdiot: flood period (0 = 100 us).
  sim::Duration delay = 0;

  /// Human-readable scenario label ("wcet_overrun:pedal").
  [[nodiscard]] std::string label() const;
};

[[nodiscard]] constexpr FaultClass fault_class(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFrameDrop:
    case FaultKind::kFrameCorrupt:
    case FaultKind::kFrameDelay:
    case FaultKind::kBabblingIdiot:
      return FaultClass::kBus;
    case FaultKind::kValueCorrupt:
    case FaultKind::kStuckAt:
      return FaultClass::kRteValue;
    case FaultKind::kTaskCrash:
    case FaultKind::kWcetOverrun:
    case FaultKind::kExecutionJitter:
      return FaultClass::kTiming;
    case FaultKind::kClockDrift:
      return FaultClass::kClock;
  }
  return FaultClass::kBus;  // unreachable
}

[[nodiscard]] std::string_view to_string(FaultKind kind);
[[nodiscard]] std::string_view to_string(FaultClass cls);

}  // namespace orte::fi
