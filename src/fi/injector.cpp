#include "fi/injector.hpp"

#include <memory>
#include <string>
#include <utility>

#include "isolation/fault_injection.hpp"
#include "net/fault_hook.hpp"
#include "net/frame.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace orte::fi {

namespace {

bool in_window(const Fault& f, sim::Time now) {
  return now >= f.from && now < f.until;
}

/// Frame-name match: empty target = every frame, else substring.
bool frame_matches(const Fault& f, const net::Frame& frame) {
  return f.target.empty() ||
         frame.name.find(f.target) != std::string::npos;
}

/// Sender-key match: exact key, or instance prefix ("pedal" matches
/// "pedal.out.pos" but not "pedal2.out.pos").
bool key_matches(const std::string& target, std::string_view key) {
  if (key == target) return true;
  return key.size() > target.size() &&
         key.compare(0, target.size(), target) == 0 &&
         key[target.size()] == '.';
}

/// One fault plus its private RNG stream (shared_ptr: the stream state must
/// outlive install_faults inside the hook closures).
struct Armed {
  Fault fault;
  std::shared_ptr<sim::Rng> rng;
};

/// A clock-drift fault resolved to its bus node.
struct Drift {
  Fault fault;
  int node = -1;
};

}  // namespace

void install_faults(sim::Kernel& kernel, vfb::System& sys,
                    const std::vector<Fault>& faults, const sim::Rng& root) {
  std::vector<Armed> frame_faults;  // drop / corrupt / delay
  std::vector<Armed> write_faults;  // value corrupt / stuck-at
  std::vector<Fault> crash_faults;  // fail-silent write swallowing
  std::vector<Drift> drifts;

  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = faults[i];
    auto rng = std::make_shared<sim::Rng>(root.fork(i));
    switch (f.kind) {
      case FaultKind::kFrameDrop:
      case FaultKind::kFrameCorrupt:
      case FaultKind::kFrameDelay:
        frame_faults.push_back({f, std::move(rng)});
        break;

      case FaultKind::kBabblingIdiot: {
        // A rogue controller flooding top-priority frames. On CAN it wins
        // every arbitration round and starves legitimate traffic (the
        // classic babbling-idiot failure CAN cannot contain); on FlexRay it
        // can only reach the dynamic segment — the TDMA static schedule is
        // structurally immune, which the campaign scores as the fault not
        // manifesting at all.
        net::Controller* rogue = nullptr;
        std::uint32_t id = static_cast<std::uint32_t>(f.value);
        if (sys.can_bus() != nullptr) {
          rogue = &sys.can_bus()->attach();
          if (id == 0) id = 1;  // dominant: below every generated id
        } else if (sys.flexray_bus() != nullptr) {
          rogue = &sys.flexray_bus()->attach();
          const auto first_dynamic = static_cast<std::uint32_t>(
              sys.flexray_bus()->config().static_slots + 1);
          if (id <= first_dynamic) id = first_dynamic;
        }
        if (rogue == nullptr) break;
        const Fault fault = f;
        const sim::Duration period =
            fault.delay > 0 ? fault.delay : sim::microseconds(100);
        kernel.schedule_periodic(
            fault.from, period,
            [&kernel, rogue, fault, id] {
              if (!in_window(fault, kernel.now())) return;
              net::Frame frame;
              frame.id = id;
              frame.name = "fi.babble";
              frame.payload.assign(8, 0xAA);
              frame.enqueued_at = kernel.now();
              rogue->send(std::move(frame));
            },
            sim::EventOrder::kSoftware);
        break;
      }

      case FaultKind::kValueCorrupt:
      case FaultKind::kStuckAt:
        write_faults.push_back({f, std::move(rng)});
        break;

      case FaultKind::kTaskCrash:
        crash_faults.push_back(f);
        [[fallthrough]];
      case FaultKind::kWcetOverrun:
      case FaultKind::kExecutionJitter: {
        // Task names are "tk|<instance>|<period-or-runnable>".
        const std::string prefix = "tk|" + f.target + "|";
        const Fault fault = f;
        for (const auto& ecu_name : sys.ecu_names()) {
          for (const auto& task : sys.ecu(ecu_name).tasks()) {
            if (task->name().rfind(prefix, 0) != 0) continue;
            switch (fault.kind) {
              case FaultKind::kWcetOverrun:
                task->transform_durations(
                    [&kernel, fault](sim::Duration base) {
                      return isolation::overrunning_wcet(
                          kernel, base, fault.magnitude, fault.from,
                          fault.until)();
                    });
                break;
              case FaultKind::kExecutionJitter:
                task->transform_durations(
                    [&kernel, fault, rng](sim::Duration base) {
                      if (!in_window(fault, kernel.now())) return base;
                      return isolation::jittery_wcet(*rng, base,
                                                     fault.magnitude)();
                    });
                break;
              default:  // kTaskCrash
                task->transform_durations(
                    [&kernel, fault](sim::Duration base) {
                      return isolation::crashing_wcet(kernel, base,
                                                      fault.from)();
                    });
                break;
            }
          }
        }
        break;
      }

      case FaultKind::kClockDrift:
        drifts.push_back({f, sys.node_of(f.target)});
        break;
    }
  }

  if (!frame_faults.empty() || !drifts.empty()) {
    const bool tdma = sys.flexray_bus() != nullptr;
    // A node whose clock slid half a static slot transmits outside its
    // TDMA window: the frame is lost to the schedule.
    const sim::Duration desync_at =
        tdma ? sys.flexray_bus()->static_slot_len() / 2 : 0;
    net::FaultHook hook = [&kernel, frame_faults, drifts, tdma,
                           desync_at](net::Frame& frame) {
      net::FaultVerdict verdict;
      for (const auto& armed : frame_faults) {
        const Fault& f = armed.fault;
        if (!in_window(f, kernel.now()) || !frame_matches(f, frame)) continue;
        if (f.probability < 1.0 && !armed.rng->chance(f.probability)) {
          continue;
        }
        switch (f.kind) {
          case FaultKind::kFrameDrop:
            verdict.drop = true;
            return verdict;
          case FaultKind::kFrameCorrupt: {
            std::vector<std::uint8_t> bytes = frame.payload.bytes();
            const auto mask =
                static_cast<std::uint8_t>(f.value != 0 ? f.value : 0xFF);
            for (auto& b : bytes) b ^= mask;
            frame.payload = net::Payload(std::move(bytes));
            break;
          }
          default:  // kFrameDelay
            verdict.delay += f.delay;
            break;
        }
      }
      for (const auto& d : drifts) {
        if (frame.source != d.node || d.node < 0) continue;
        const sim::Time now = kernel.now();
        if (now < d.fault.from || now >= d.fault.until) continue;
        const auto offset = static_cast<sim::Duration>(
            static_cast<double>(now - d.fault.from) * d.fault.magnitude /
            1e6);
        if (tdma) {
          if (offset > desync_at) verdict.drop = true;
        } else {
          verdict.delay += offset;
        }
      }
      return verdict;
    };
    if (sys.can_bus() != nullptr) {
      sys.can_bus()->set_fault_hook(std::move(hook));
    } else if (sys.flexray_bus() != nullptr) {
      sys.flexray_bus()->set_fault_hook(std::move(hook));
    }
  }

  if (!write_faults.empty() || !crash_faults.empty()) {
    vfb::Rte::WriteInterceptor interceptor =
        [&kernel, write_faults, crash_faults](std::string_view key,
                                              std::uint64_t& value) {
          for (const auto& f : crash_faults) {
            // Crashes are permanent (no until): a dead component writes
            // nothing ever again — fail-silent at the component boundary.
            if (kernel.now() >= f.from && key_matches(f.target, key)) {
              return false;
            }
          }
          for (const auto& armed : write_faults) {
            const Fault& f = armed.fault;
            if (!in_window(f, kernel.now())) continue;
            if (!key_matches(f.target, key)) continue;
            if (f.probability < 1.0 && !armed.rng->chance(f.probability)) {
              continue;
            }
            if (f.kind == FaultKind::kStuckAt) {
              value = f.value;
            } else {
              value ^= (f.value != 0 ? f.value : ~0ULL);
            }
          }
          return true;
        };
    // Publish happens on the producer's ECU; installing the same composite
    // interceptor everywhere covers targets on any ECU.
    for (const auto& ecu_name : sys.ecu_names()) {
      sys.rte(ecu_name).intercept_writes(interceptor);
    }
  }
}

}  // namespace orte::fi
