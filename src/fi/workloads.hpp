// Canonical campaign workloads, shared by the fi tests, the E9b bench and
// CI's smoke campaign so every consumer scores the same system.
#pragma once

#include "fi/campaign.hpp"

namespace orte::fi::workloads {

/// Distributed brake-by-wire over FlexRay: one pedal-sensor ECU feeding four
/// wheel-actuator ECUs through a static TDMA slot. Contracts cover all four
/// monitor planes the campaign scores: the pedal guarantees a 5 ms update
/// period AND a [0, 1000] value range; each wheel assumes a 2 ms end-to-end
/// age AND the same range on arrival — so bus corruption (receiver-side
/// range), value faults (sender-side range), timing faults (arrival /
/// deadline) and clock drift (latency starvation) are all observable.
/// Thread-safe: every call builds a fully fresh bundle.
///
/// `alive_supervision` additionally binds watchdog alive supervision from
/// the contract periods (DeploymentPlan::alive_supervision): the variant in
/// which the pedal's fail-silent crash is detectable (kind "alive"), i.e.
/// the workload with validation rules V13/V15 fixed.
[[nodiscard]] ModelBundle brake_by_wire(bool alive_supervision = false);

/// The canonical brake_by_wire fault grid: one representative per fault
/// kind that the workload can express (8 faults — kFrameDelay is omitted
/// because FlexRay pins frame timing), with sub-1.0 probabilities on the
/// stochastic ones so replicates genuinely exercise per-scenario RNG
/// streams. Shared by test_fi, bench_e9_fi_coverage and the CI smoke
/// campaign so all three score the same fault space.
[[nodiscard]] std::vector<Fault> standard_faults();

/// Append standard_faults() to a campaign.
void add_standard_faults(Campaign& campaign);

}  // namespace orte::fi::workloads
