#include "fi/campaign.hpp"

#include <atomic>
#include <cstdio>
#include <thread>
#include <utility>

#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "fi/injector.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "vfb/system.hpp"

namespace orte::fi {

// --- Scoring primitives -------------------------------------------------------

std::string_view to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kNominal:
      return "nominal";
    case Outcome::kContained:
      return "contained";
    case Outcome::kDetected:
      return "detected";
    case Outcome::kMissed:
      return "missed";
    case Outcome::kSpurious:
      return "spurious";
  }
  return "unknown";
}

unsigned detector_of(std::string_view violation_kind) {
  if (violation_kind == "period" || violation_kind == "jitter") {
    return kDetArrival;
  }
  if (violation_kind == "deadline" || violation_kind == "response") {
    return kDetDeadline;
  }
  if (violation_kind == "latency") return kDetLatency;
  if (violation_kind == "range") return kDetRange;
  if (violation_kind == "automaton") return kDetAutomaton;
  if (violation_kind == "alive") return kDetAlive;
  return 0;
}

std::string_view detector_name(unsigned bit) {
  switch (bit) {
    case kDetArrival:
      return "arrival";
    case kDetDeadline:
      return "deadline";
    case kDetLatency:
      return "latency";
    case kDetRange:
      return "range";
    case kDetAutomaton:
      return "automaton";
    case kDetDem:
      return "dem";
    case kDetMode:
      return "mode";
    case kDetAlive:
      return "alive";
    default:
      return "?";
  }
}

std::string blamed_instance(const rv::Violation& violation) {
  std::string_view s = violation.subject;
  // Latency subjects are "source-key -> sink": blame the source.
  const auto arrow = s.find(" -> ");
  if (arrow != std::string_view::npos) s = s.substr(0, arrow);
  // Task subjects are "tk|<instance>|...".
  if (s.rfind("tk|", 0) == 0) {
    s.remove_prefix(3);
    return std::string(s.substr(0, s.find('|')));
  }
  return std::string(s.substr(0, s.find('.')));
}

Outcome classify(const Evidence& evidence, const Domain& domain) {
  if (evidence.baseline) {
    return evidence.detections.empty() ? Outcome::kNominal
                                       : Outcome::kSpurious;
  }
  bool pre_onset = false;
  bool post_onset = false;
  bool leaked = false;
  for (const auto& d : evidence.detections) {
    if (d.when < evidence.onset) {
      pre_onset = true;
      continue;
    }
    post_onset = true;
    if (!domain.contains(d.instance)) leaked = true;
  }
  if (pre_onset) return Outcome::kSpurious;  // the detector cried wolf
  if (!post_onset) return Outcome::kMissed;
  return leaked ? Outcome::kDetected : Outcome::kContained;
}

// --- Report -------------------------------------------------------------------

std::size_t Report::count(Outcome outcome) const {
  std::size_t n = 0;
  for (const auto& s : scenarios) {
    if (s.outcome == outcome) ++n;
  }
  return n;
}

namespace {

void append_row(std::string& out, const char* cls, const ClassStats& cs) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-10s %6zu %9zu %10zu %7zu %7zu %9zu |", cls, cs.total,
                cs.detected, cs.contained, cs.leaked, cs.missed, cs.spurious);
  out += buf;
  for (std::size_t i = 0; i < kDetectorCount; ++i) {
    std::snprintf(buf, sizeof(buf), " %9zu", cs.by_detector[i]);
    out += buf;
  }
  out += '\n';
}

void append_latency(std::string& out, const char* stage,
                    const sim::Stats& stats) {
  char buf[256];
  if (stats.count() == 0) {
    std::snprintf(buf, sizeof(buf), "%-22s (no samples)\n", stage);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%-22s p50 %10.0f us   p90 %10.0f us   p99 %10.0f us   "
                  "(%zu samples)\n",
                  stage, stats.percentile(50) / 1e3,
                  stats.percentile(90) / 1e3, stats.percentile(99) / 1e3,
                  stats.count());
  }
  out += buf;
}

}  // namespace

std::string Report::render() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-10s %6s %9s %10s %7s %7s %9s |", "class", "total",
                "detected", "contained", "leaked", "missed", "spurious");
  out += buf;
  for (std::size_t i = 0; i < kDetectorCount; ++i) {
    std::snprintf(buf, sizeof(buf), " %9s",
                  std::string(detector_name(1u << i)).c_str());
    out += buf;
  }
  out += '\n';
  out += std::string(72 + 10 * kDetectorCount, '-');
  out += '\n';
  for (const auto& [cls, cs] : matrix) {
    append_row(out, cls.c_str(), cs);
  }
  std::snprintf(buf, sizeof(buf),
                "baselines: %zu (%zu spurious)\n", baselines,
                spurious_baselines);
  out += buf;
  append_latency(out, "onset -> violation", detection_latency);
  append_latency(out, "onset -> DTC", confirmation_latency);
  append_latency(out, "onset -> degraded", reaction_latency);
  return out;
}

// --- Campaign -----------------------------------------------------------------

Campaign::Campaign(ModelFactory factory, CampaignConfig cfg)
    : factory_(std::move(factory)), cfg_(cfg) {}

void Campaign::add_fault(Fault fault) {
  if (fault.from == 0) fault.from = cfg_.onset;
  faults_.push_back(std::move(fault));
}

Domain Campaign::domain_of(const Fault& fault,
                           const vfb::DeploymentPlan& plan) const {
  Domain domain;
  switch (fault.kind) {
    case FaultKind::kFrameDrop:
    case FaultKind::kFrameCorrupt:
    case FaultKind::kFrameDelay:
      // A bus fault may disturb any deployed component; detection anywhere
      // is in-domain (the fault's blast radius IS the shared medium).
      domain.everything = true;
      break;
    case FaultKind::kBabblingIdiot:
      // The rogue node is not a component: every disturbance of real
      // components is a leak. (On TDMA buses the static schedule contains
      // the babbler structurally — the fault then scores missed.)
      break;
    case FaultKind::kValueCorrupt:
    case FaultKind::kStuckAt:
      domain.instances.insert(
          fault.target.substr(0, fault.target.find('.')));
      break;
    case FaultKind::kTaskCrash:
    case FaultKind::kWcetOverrun:
    case FaultKind::kExecutionJitter:
      domain.instances.insert(fault.target);
      break;
    case FaultKind::kClockDrift:
      // Everything on the drifting ECU shares its broken clock.
      for (const auto& [instance, dep] : plan.instances) {
        if (dep.ecu == fault.target) domain.instances.insert(instance);
      }
      break;
  }
  return domain;
}

ScenarioResult Campaign::run_scenario(std::size_t index) const {
  ScenarioResult result;
  result.index = index;
  result.baseline = index == 0;
  if (!result.baseline) {
    result.fault = faults_[(index - 1) / cfg_.replicates];
    result.onset = result.fault.from;
  }

  // Fresh world per scenario: nothing survives into the next one, so the
  // atomic work-index schedule cannot leak state across scenarios.
  ModelBundle bundle = factory_();
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  vfb::System sys(kernel, trace, bundle.model, bundle.plan);

  bsw::Dem dem(kernel, trace);
  bsw::ModeMachine modes(kernel, trace, "vehicle", bundle.initial_mode);
  modes.add_mode(bundle.degraded_mode);
  modes.add_transition(bundle.initial_mode, bundle.degraded_mode);
  modes.add_transition(bundle.degraded_mode, bundle.initial_mode);

  Evidence evidence;
  evidence.baseline = result.baseline;
  evidence.onset = result.onset;

  if (sys.monitors() != nullptr) {
    sys.monitors()->report_to(dem, cfg_.debounce);
    sys.monitors()->escalate_to(modes, bundle.degraded_mode,
                                cfg_.escalation_threshold);
    sys.monitors()->on_violation([&evidence](const rv::Violation& v) {
      evidence.detections.push_back(
          Detection{v.when, blamed_instance(v), detector_of(v.kind)});
    });
  }
  dem.on_dtc_stored([&result, &kernel](const bsw::Dtc&) {
    if (result.first_dtc < 0) result.first_dtc = kernel.now();
  });
  modes.on_transition([&result, &kernel, &bundle](const std::string&,
                                                  const std::string& to) {
    if (to == bundle.degraded_mode && result.first_degrade < 0) {
      result.first_degrade = kernel.now();
    }
  });

  if (!result.baseline) {
    install_faults(kernel, sys, {result.fault},
                   sim::Rng(cfg_.seed).fork(index));
  }

  // The rv heartbeat (cf. the closed-loop recovery tests): close monitor
  // windows and run DEM aging periodically, in observer order so it never
  // perturbs same-instant application events.
  kernel.schedule_periodic(
      cfg_.heartbeat, cfg_.heartbeat,
      [&sys, &dem] {
        if (sys.monitors() != nullptr) sys.monitors()->flush();
        dem.operation_cycle_end();
      },
      sim::EventOrder::kObserver);

  sys.run_for(cfg_.horizon);

  result.violations = evidence.detections.size();
  for (const auto& d : evidence.detections) {
    if (!result.baseline && d.when < result.onset) continue;
    if (result.first_violation < 0 || d.when < result.first_violation) {
      result.first_violation = d.when;
    }
    result.detectors |= d.detector;
  }
  if (result.first_dtc >= result.onset && result.first_dtc >= 0) {
    result.detectors |= kDetDem;
  }
  if (result.first_degrade >= result.onset && result.first_degrade >= 0) {
    result.detectors |= kDetMode;
  }

  result.outcome = result.baseline
                       ? classify(evidence, Domain{})
                       : classify(evidence,
                                  domain_of(result.fault, bundle.plan));
  return result;
}

Report Campaign::run() const {
  const std::size_t n = scenario_count();
  std::vector<ScenarioResult> results(n);
  std::atomic<std::size_t> next{0};
  const auto worker = [this, n, &next, &results] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      results[i] = run_scenario(i);
    }
  };
  if (cfg_.threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(cfg_.threads);
    for (std::size_t t = 0; t < cfg_.threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  // Aggregation is sequential over the index-ordered results, so the report
  // is independent of which worker ran which scenario.
  Report report;
  report.scenarios = std::move(results);
  for (const auto& r : report.scenarios) {
    if (r.baseline) {
      ++report.baselines;
      if (r.outcome == Outcome::kSpurious) ++report.spurious_baselines;
      continue;
    }
    ClassStats& cs =
        report.matrix[std::string(to_string(fault_class(r.fault.kind)))];
    ++cs.total;
    switch (r.outcome) {
      case Outcome::kContained:
        ++cs.detected;
        ++cs.contained;
        break;
      case Outcome::kDetected:
        ++cs.detected;
        ++cs.leaked;
        break;
      case Outcome::kMissed:
        ++cs.missed;
        break;
      case Outcome::kSpurious:
        ++cs.spurious;
        break;
      case Outcome::kNominal:
        break;
    }
    for (std::size_t bit = 0; bit < kDetectorCount; ++bit) {
      if ((r.detectors & (1u << bit)) != 0) ++cs.by_detector[bit];
    }
    if (r.outcome == Outcome::kContained || r.outcome == Outcome::kDetected) {
      if (r.first_violation >= r.onset) {
        report.detection_latency.add(
            static_cast<double>(r.first_violation - r.onset));
      }
      if (r.first_dtc >= r.onset) {
        report.confirmation_latency.add(
            static_cast<double>(r.first_dtc - r.onset));
      }
      if (r.first_degrade >= r.onset) {
        report.reaction_latency.add(
            static_cast<double>(r.first_degrade - r.onset));
      }
    }
  }
  return report;
}

}  // namespace orte::fi
