// Fault-injection campaign engine: expands a declarative fault list into N
// deterministic scenarios, runs them on a fixed-size thread pool, and scores
// every run against the runtime-verification stack — did the rv monitors
// SEE the fault (detected), did every reaction stay inside the fault's
// containment domain (contained), did nothing fire (missed), and does the
// fault-free baseline stay silent (else spurious)? The aggregate is the
// fault-class x detector coverage matrix of experiment E9b: the measured
// counterpart of the paper's §4 error-containment claims.
//
// Determinism: each scenario builds a fresh Kernel/Trace/System from the
// user's model factory and draws every stochastic decision from
// Rng(seed).fork(scenario_index). Results are written into a pre-sized
// vector by scenario index, so the report is bit-identical whether the
// campaign runs on 1 thread or N.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fi/fault.hpp"
#include "rv/health.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "vfb/deployment.hpp"
#include "vfb/model.hpp"

namespace orte::fi {

// --- Scenario model -----------------------------------------------------------

/// Everything one scenario needs to build its own private system. The
/// Composition is held by value because vfb::System keeps a reference into
/// it — the bundle outlives the system inside the scenario scope.
struct ModelBundle {
  vfb::Composition model;
  vfb::DeploymentPlan plan;
  std::string initial_mode = "RUN";
  std::string degraded_mode = "DEGRADED";
};

/// Builds a fresh bundle per scenario. MUST be thread-safe: the campaign
/// calls it concurrently from worker threads (build pure models — shared
/// mutable state inside behaviors must be created per call).
using ModelFactory = std::function<ModelBundle()>;

struct CampaignConfig {
  std::uint64_t seed = 1;
  /// Scenarios per fault (each with its own RNG stream).
  std::size_t replicates = 1;
  /// Simulated time per scenario.
  sim::Duration horizon = sim::seconds(1);
  /// Monitor flush + DEM operation-cycle period (the rv heartbeat).
  sim::Duration heartbeat = sim::milliseconds(100);
  /// Default fault onset, applied to faults whose `from` is 0. A fault-free
  /// warm-up prefix is what lets pre-onset violations be scored spurious.
  sim::Time onset = sim::milliseconds(200);
  /// Worker threads; <= 1 runs inline.
  std::size_t threads = 1;
  /// DEM debounce threshold for contract events.
  std::int32_t debounce = 3;
  /// Over-budget window violations before the degraded mode is requested.
  std::size_t escalation_threshold = 3;
};

// --- Outcome scoring ----------------------------------------------------------

enum class Outcome {
  kNominal,    ///< Baseline ran clean.
  kContained,  ///< Detected, and every violation blames the fault's domain.
  kDetected,   ///< Detected, but a violation leaked outside the domain.
  kMissed,     ///< Fault active, no monitor fired.
  kSpurious,   ///< A violation fired before onset (or in the baseline).
};

[[nodiscard]] std::string_view to_string(Outcome outcome);

/// Detector bitmask: which layer(s) noticed the fault.
enum Detector : unsigned {
  kDetArrival = 1u << 0,
  kDetDeadline = 1u << 1,
  kDetLatency = 1u << 2,
  kDetRange = 1u << 3,
  kDetAutomaton = 1u << 4,
  kDetDem = 1u << 5,   ///< A contract DTC matured.
  kDetMode = 1u << 6,  ///< The degraded mode was entered.
  kDetAlive = 1u << 7,  ///< Watchdog alive supervision expired (fail-silence
                        ///< detection; needs DeploymentPlan::alive_supervision).
};
inline constexpr unsigned kDetectorCount = 8;

/// Monitor detector bit for a Violation::kind ("period"/"jitter" ->
/// kDetArrival, "deadline"/"response" -> kDetDeadline, ...; 0 for unknown).
[[nodiscard]] unsigned detector_of(std::string_view violation_kind);
[[nodiscard]] std::string_view detector_name(unsigned bit);

/// Component instance a violation blames: "tk|x|..." task subjects map to x,
/// "a.b.c -> sink" latency subjects to a, plain keys to their first path
/// segment. This is the same attribution the registry's quarantine uses.
[[nodiscard]] std::string blamed_instance(const rv::Violation& violation);

/// One monitor violation reduced to what scoring needs.
struct Detection {
  sim::Time when = 0;
  std::string instance;    ///< Blamed instance (see blamed_instance()).
  unsigned detector = 0;   ///< Detector bit.
};

/// Everything classify() judges — kept free of System/Trace so the scoring
/// rules are unit-testable without running a simulation.
struct Evidence {
  bool baseline = false;
  sim::Time onset = 0;  ///< Ignored for baselines.
  std::vector<Detection> detections;
};

/// The set of instances a fault is allowed to disturb. Bus-wide faults set
/// `everything` (any blame is in-domain -> contained if detected); a
/// babbling idiot has an EMPTY domain (the rogue node is not a component,
/// so any disturbance of real components is a leak).
struct Domain {
  bool everything = false;
  std::set<std::string> instances;

  [[nodiscard]] bool contains(const std::string& instance) const {
    return everything || instances.count(instance) > 0;
  }
};

/// The pure scoring rule (see Outcome). Pre-onset detections dominate
/// (spurious), then silence (missed/nominal), then containment.
[[nodiscard]] Outcome classify(const Evidence& evidence, const Domain& domain);

// --- Results ------------------------------------------------------------------

struct ScenarioResult {
  std::size_t index = 0;
  bool baseline = false;
  Fault fault;  ///< Meaningful when !baseline.
  Outcome outcome = Outcome::kNominal;
  unsigned detectors = 0;  ///< Detector bits that fired post-onset.
  sim::Time onset = 0;
  sim::Time first_violation = -1;  ///< -1 = never.
  sim::Time first_dtc = -1;
  sim::Time first_degrade = -1;
  std::size_t violations = 0;
};

struct ClassStats {
  std::size_t total = 0;
  /// Any monitor fired post-onset (contained + leaked).
  std::size_t detected = 0;
  std::size_t contained = 0;  ///< Detected, every blame inside the domain.
  std::size_t leaked = 0;     ///< Detected, but a blame escaped the domain.
  std::size_t missed = 0;
  std::size_t spurious = 0;
  /// Scenarios of this class in which each detector fired (by bit index).
  std::vector<std::size_t> by_detector = std::vector<std::size_t>(
      kDetectorCount, 0);
};

struct Report {
  std::vector<ScenarioResult> scenarios;
  /// Fault class -> outcome/detector aggregate (the E9b coverage matrix).
  std::map<std::string, ClassStats> matrix;
  std::size_t baselines = 0;
  std::size_t spurious_baselines = 0;
  /// Onset -> first violation / matured DTC / degraded mode, over scenarios
  /// scored detected or contained (ns).
  sim::Stats detection_latency;
  sim::Stats confirmation_latency;
  sim::Stats reaction_latency;

  [[nodiscard]] std::size_t count(Outcome outcome) const;
  /// Rendered coverage matrix + latency percentiles (stdout-ready).
  [[nodiscard]] std::string render() const;
};

// --- Runner -------------------------------------------------------------------

class Campaign {
 public:
  Campaign(ModelFactory factory, CampaignConfig cfg);

  /// Append a fault; it becomes `replicates` scenarios. Faults with
  /// `from == 0` inherit the campaign onset.
  void add_fault(Fault fault);

  /// Baseline + faults x replicates.
  [[nodiscard]] std::size_t scenario_count() const {
    return 1 + faults_.size() * cfg_.replicates;
  }

  /// Run every scenario (on cfg.threads workers) and aggregate.
  [[nodiscard]] Report run() const;

 private:
  [[nodiscard]] ScenarioResult run_scenario(std::size_t index) const;
  [[nodiscard]] Domain domain_of(const Fault& fault,
                                 const vfb::DeploymentPlan& plan) const;

  ModelFactory factory_;
  CampaignConfig cfg_;
  std::vector<Fault> faults_;
};

}  // namespace orte::fi
